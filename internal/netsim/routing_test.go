package netsim

import (
	"math/rand"
	"testing"
)

// diamond: 0 -(fast but narrow)- 1 -  3 and 0 - 2 - 3 (slow but wide).
func diamondLinks() []TopoLink {
	return []TopoLink{
		{A: 0, B: 1, RateBps: 10e6, PropDelay: 0.001, QueueCap: 100},
		{A: 1, B: 3, RateBps: 10e6, PropDelay: 0.001, QueueCap: 100},
		{A: 0, B: 2, RateBps: 100e6, PropDelay: 0.010, QueueCap: 100},
		{A: 2, B: 3, RateBps: 100e6, PropDelay: 0.010, QueueCap: 100},
	}
}

func TestShortestPathPicksLowDelay(t *testing.T) {
	var sim Simulator
	nw := NewNetwork(&sim, 4)
	links := diamondLinks()
	BuildTopology(nw, links)
	paths := InstallRoutes(nw, links, []Commodity{{Flow: 1, Src: 0, Dst: 3, Demand: 1e6}}, ShortestPath)
	p := paths[1]
	if len(p) != 3 || p[1] != 1 {
		t.Fatalf("shortest path = %v, want via node 1 (2 ms vs 20 ms)", p)
	}
}

func TestMinMaxUtilSpreadsLoad(t *testing.T) {
	var sim Simulator
	nw := NewNetwork(&sim, 4)
	// Equal 10 Mbps capacities, different delays: shortest-path stacks both
	// flows on the fast path (160% util); min-max must split them.
	links := []TopoLink{
		{A: 0, B: 1, RateBps: 10e6, PropDelay: 0.001, QueueCap: 100},
		{A: 1, B: 3, RateBps: 10e6, PropDelay: 0.001, QueueCap: 100},
		{A: 0, B: 2, RateBps: 10e6, PropDelay: 0.010, QueueCap: 100},
		{A: 2, B: 3, RateBps: 10e6, PropDelay: 0.010, QueueCap: 100},
	}
	BuildTopology(nw, links)
	comms := []Commodity{
		{Flow: 1, Src: 0, Dst: 3, Demand: 8e6},
		{Flow: 2, Src: 0, Dst: 3, Demand: 8e6},
	}
	paths := InstallRoutes(nw, links, comms, MinMaxUtilization)
	if len(paths) != 2 {
		t.Fatalf("routed %d commodities", len(paths))
	}
	via := map[int]bool{}
	for _, p := range paths {
		via[p[1]] = true
	}
	if !via[1] || !via[2] {
		t.Fatalf("min-max routing did not spread load: %v", paths)
	}
}

func TestThroughputOptimalPrefersWide(t *testing.T) {
	var sim Simulator
	nw := NewNetwork(&sim, 4)
	links := diamondLinks()
	BuildTopology(nw, links)
	paths := InstallRoutes(nw, links, []Commodity{{Flow: 1, Src: 0, Dst: 3, Demand: 1e6}}, ThroughputOptimal)
	p := paths[1]
	if len(p) != 3 || p[1] != 2 {
		t.Fatalf("widest path = %v, want via node 2 (100 Mbps)", p)
	}
}

func TestSchemesDeliverTraffic(t *testing.T) {
	for _, scheme := range []Scheme{ShortestPath, MinMaxUtilization, ThroughputOptimal} {
		var sim Simulator
		nw := NewNetwork(&sim, 4)
		links := diamondLinks()
		BuildTopology(nw, links)
		comms := []Commodity{
			{Flow: 1, Src: 0, Dst: 3, Demand: 2e6},
			{Flow: 2, Src: 3, Dst: 0, Demand: 2e6},
		}
		InstallRoutes(nw, links, comms, scheme)
		mon := NewFlowMonitor()
		rng := rand.New(rand.NewSource(1))
		for _, c := range comms {
			s := &UDPSource{Net: nw, Flow: c.Flow, Src: c.Src, Dst: c.Dst,
				RateBps: float64(c.Demand), PktSize: 500, Poisson: true, Rng: rng, Monitor: mon}
			s.Start()
		}
		sim.Run(0.5)
		agg := mon.Aggregate()
		if agg.RxPackets == 0 {
			t.Fatalf("%v delivered nothing", scheme)
		}
		if agg.LossRate() > 0.05 {
			t.Fatalf("%v lost %.1f%% at low load", scheme, agg.LossRate()*100)
		}
	}
}

func TestSchemeString(t *testing.T) {
	if ShortestPath.String() != "shortest-path" || Scheme(99).String() != "unknown" {
		t.Fatal("Scheme.String broken")
	}
}

func TestUnreachableCommodityOmitted(t *testing.T) {
	var sim Simulator
	nw := NewNetwork(&sim, 3)
	links := []TopoLink{{A: 0, B: 1, RateBps: 1e6, PropDelay: 0.001, QueueCap: 10}}
	BuildTopology(nw, links)
	paths := InstallRoutes(nw, links, []Commodity{{Flow: 1, Src: 0, Dst: 2, Demand: 1e5}}, ShortestPath)
	if _, ok := paths[1]; ok {
		t.Fatal("unreachable commodity got a path")
	}
}
