package experiments

import (
	"encoding/json"
	"os"

	"cisp"
	"cisp/internal/netsim"
)

// scaleName renders a cisp.Scale for the benchmark record.
func scaleName(s cisp.Scale) string {
	switch s {
	case cisp.ScaleSmall:
		return "small"
	case cisp.ScaleMedium:
		return "medium"
	case cisp.ScaleFull:
		return "full"
	}
	return "unknown"
}

// benchSchema names the BENCH_netsim.json document format; the compare
// gate refuses records of any other schema.
const benchSchema = "cisp-bench-netsim/1"

// BenchRecord is the machine-readable benchmark document CI emits
// (BENCH_netsim.json): one §6.4 traffic-mix replay per engine with
// throughput figures (flows/sec, ns/event) for trend tracking across
// commits.
type BenchRecord struct {
	Schema  string // "cisp-bench-netsim/1"
	Scale   string
	Seed    int64
	Engines []Fig6ScaleResult
}

// BenchNetsim replays the designed-backbone traffic mix on both engines
// and writes the throughput record to path as JSON. Flow counts are per
// engine (the packet engine clamps itself at its practical limit). Any
// engine that fails to run is simply absent from the record.
func BenchNetsim(opt Options, packetFlows, fluidFlows int, path string) error {
	rec := BenchRecord{
		Schema: benchSchema,
		Scale:  scaleName(opt.Scale),
		Seed:   opt.Seed,
	}
	if r := Fig6Scale(opt, netsim.PacketMode, packetFlows); r != nil {
		rec.Engines = append(rec.Engines, *r)
	}
	if r := Fig6Scale(opt, netsim.FluidMode, fluidFlows); r != nil {
		rec.Engines = append(rec.Engines, *r)
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
