package weather

import (
	"math"
	"math/rand"
	"sort"

	"cisp/internal/design"
	"cisp/internal/geo"
	"cisp/internal/linkbuild"
	"cisp/internal/parallel"
	"cisp/internal/units"
)

// YearAnalysis is the Fig 7 result: per-city-pair stretch statistics across
// a year of sampled weather intervals, plus the fiber-only baseline and the
// graded capacity record of the link fleet.
type YearAnalysis struct {
	// Per-pair stretch values (unsorted, one per city pair with traffic).
	Best  []float64 // fair-weather (minimum across the year)
	P99   []float64 // 99th percentile across the year
	Worst []float64 // maximum across the year
	Fiber []float64 // fiber-only stretch

	// FailedLinksPerDay records how many built links were down each day
	// (the paper's binary model: worst hop past the fade margin).
	FailedLinksPerDay []int

	// DegradedLinksPerDay records how many links were below clear-sky rate
	// but still up — the graded adaptive-modulation refinement.
	DegradedLinksPerDay []int

	// MeanCapacityPerDay is the mean adaptive-modulation capacity fraction
	// across built links each day (1 = whole fleet at clear-sky rate).
	MeanCapacityPerDay []float64

	// Intervals is the pre-drawn half-hour interval schedule (one per day),
	// exposed so packet-level studies can revisit specific intervals.
	Intervals []int
}

// Config for the year-long analysis.
type Config struct {
	FreqGHz      float64  // default 11
	FadeMarginDB units.DB // default DefaultFadeMargin
	Days         int      // default 365
	Seed         int64    // interval-picking seed
}

func (c *Config) setDefaults() {
	if c.FreqGHz == 0 {
		c.FreqGHz = geo.DefaultFrequencyGHz
	}
	if c.FadeMarginDB == 0 {
		c.FadeMarginDB = DefaultFadeMargin
	}
	if c.Days == 0 {
		c.Days = 365
	}
	if c.Days < 0 { // an explicit negative yields an empty analysis
		c.Days = 0
	}
}

// dayResult is one day's contribution, produced independently per day so
// the days can fan out across the pool.
type dayResult struct {
	failed, degraded int
	meanCap          float64
	stretch          []float64 // per traffic pair, in pair-list order
}

// AnalyzeYear reproduces §6.1 with the graded dynamic-network engine: for
// each day a uniformly random 30-minute interval is drawn (the schedule is
// pre-drawn sequentially, so it is a pure function of the seed), every
// built link's graded condition is evaluated under that interval's
// precipitation field, failed links are removed from the hybrid APSP
// incrementally (design.Dynamic — no per-day topology rebuild), and
// per-pair stretch plus fleet capacity statistics are recorded.
//
// Days are evaluated concurrently on the shared pool; each day's result is
// a pure function of (topology, generator, cfg, day), and aggregation runs
// sequentially in day order, so the analysis is bit-identical at every
// worker count, including one.
func AnalyzeYear(top *design.Topology, links *linkbuild.Links, gen *Generator, cfg Config) *YearAnalysis {
	cfg.setDefaults()

	// Pre-draw the interval schedule sequentially for determinism.
	rng := rand.New(rand.NewSource(cfg.Seed))
	intervals := make([]int, cfg.Days)
	for day := range intervals {
		intervals[day] = rng.Intn(48)
	}

	lg := NewLinkGeometry(top, links)
	dyn := design.NewDynamic(top)
	p := top.P
	n := p.N

	// Fixed pair order shared by every day.
	type pairIdx struct{ s, t int }
	var pairs []pairIdx
	for s := 0; s < n; s++ {
		for t := s + 1; t < n; t++ {
			if p.Traffic[s][t] > 0 {
				pairs = append(pairs, pairIdx{s, t})
			}
		}
	}

	// Fan the days out; per-chunk scratch keeps workers from contending.
	results := make([]dayResult, cfg.Days)
	parallel.For(cfg.Days, 1, func(lo, hi int) {
		sc := dyn.NewScratch()
		var conds []LinkCondition
		var removed []int
		for day := lo; day < hi; day++ {
			field := gen.FieldAt(day, intervals[day])
			conds = lg.Conditions(field, cfg.FreqGHz, cfg.FadeMarginDB, conds)
			removed = removed[:0]
			res := dayResult{stretch: make([]float64, len(pairs))}
			capSum := 0.0
			for li, c := range conds {
				capSum += c.CapFrac
				if c.Failed {
					removed = append(removed, li)
					res.failed++
				} else if c.CapFrac < 1 {
					res.degraded++
				}
			}
			if len(conds) > 0 {
				res.meanCap = capSum / float64(len(conds))
			} else {
				res.meanCap = 1
			}
			d := dyn.DistWithout(removed, sc)
			for k, pr := range pairs {
				res.stretch[k] = d[pr.s][pr.t] / p.Geodesic[pr.s][pr.t]
			}
			results[day] = res
		}
	})

	// Sequential, day-ordered aggregation.
	an := &YearAnalysis{Intervals: intervals}
	for _, res := range results {
		an.FailedLinksPerDay = append(an.FailedLinksPerDay, res.failed)
		an.DegradedLinksPerDay = append(an.DegradedLinksPerDay, res.degraded)
		an.MeanCapacityPerDay = append(an.MeanCapacityPerDay, res.meanCap)
	}
	if cfg.Days == 0 {
		return an
	}
	sorted := make([]float64, cfg.Days)
	for k, pr := range pairs {
		for day := range results {
			sorted[day] = results[day].stretch[k]
		}
		sort.Float64s(sorted)
		an.Best = append(an.Best, sorted[0])
		an.Worst = append(an.Worst, sorted[len(sorted)-1])
		an.P99 = append(an.P99, quantile(sorted, 0.99))
		an.Fiber = append(an.Fiber, top.FiberDist(pr.s, pr.t)/p.Geodesic[pr.s][pr.t])
	}
	return an
}

// quantile interpolates the q-th quantile (q in [0,1]) of an ascending
// slice; NaN for an empty input.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	idx := q * float64(len(sorted)-1)
	lo := int(math.Floor(idx))
	hi := int(math.Ceil(idx))
	if lo == hi {
		return sorted[lo]
	}
	f := idx - float64(lo)
	return sorted[lo]*(1-f) + sorted[hi]*f
}

// Median of an unsorted slice (convenience for reporting).
func Median(v []float64) float64 {
	if len(v) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	return quantile(s, 0.5)
}
