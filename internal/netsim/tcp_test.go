package netsim

import "testing"

// twoNodeTCP wires a duplex path 0↔1 and returns the network.
func twoNodeTCP(rate float64, prop float64, qcap int) (*Simulator, *Network) {
	var sim Simulator
	nw := NewNetwork(&sim, 2)
	nw.AddDuplex(0, 1, rate, prop, qcap)
	nw.SetFlowPath(1, []int{0, 1})
	nw.SetFlowPath(1, []int{1, 0}) // reverse path for ACKs
	return &sim, nw
}

func TestTCPCompletesCleanPath(t *testing.T) {
	sim, nw := twoNodeTCP(10e6, 0.005, 0)
	var fct float64 = -1
	c := &TCPConn{Net: nw, Flow: 1, Src: 0, Dst: 1, FlowSize: 100_000, InitRTT: 0.01,
		Done: func(f float64) { fct = f }}
	c.Start()
	sim.Run(10)
	if fct < 0 {
		t.Fatal("transfer did not complete")
	}
	// Lower bound: transfer time at line rate + 1 RTT ≈ 80ms + 10ms.
	if fct < 0.08 {
		t.Fatalf("FCT %v faster than line rate", fct)
	}
	if fct > 1 {
		t.Fatalf("FCT %v unreasonably slow on a clean path", fct)
	}
}

func TestTCPCompletesWithTinyQueue(t *testing.T) {
	// Queue of 5 packets forces drops; Reno must still finish via fast
	// retransmit / RTO.
	sim, nw := twoNodeTCP(10e6, 0.005, 5)
	done := false
	c := &TCPConn{Net: nw, Flow: 1, Src: 0, Dst: 1, FlowSize: 200_000, InitRTT: 0.01,
		Done: func(f float64) { done = true }}
	c.Start()
	sim.Run(60)
	if !done {
		t.Fatal("transfer did not survive a lossy bottleneck")
	}
}

func TestTCPDeliversExactBytes(t *testing.T) {
	sim, nw := twoNodeTCP(10e6, 0.002, 0)
	var rxPayload int64
	// Wrap the connection's handler to count payload bytes first.
	c := &TCPConn{Net: nw, Flow: 1, Src: 0, Dst: 1, FlowSize: 14_600, InitRTT: 0.01}
	c.Start()
	inner := nw.flows[1].deliver
	seen := map[int64]bool{}
	nw.OnDeliver(1, func(p *Packet) {
		if p.Kind == Data && !seen[p.Seq] {
			seen[p.Seq] = true
			rxPayload += int64(p.Size - 40)
		}
		inner(p)
	})
	sim.Run(10)
	if rxPayload != 14_600 {
		t.Fatalf("unique payload delivered = %d, want 14600", rxPayload)
	}
}

func TestTCPPacingReducesBurstQueue(t *testing.T) {
	// The Fig 6 mechanism in miniature: a fast ingress (1 Gbps) into a slow
	// egress (10 Mbps). Without pacing the initial window lands as a burst
	// in the egress queue; with pacing it is spread over the SRTT estimate.
	run := func(pacing bool) int {
		var sim Simulator
		nw := NewNetwork(&sim, 3)
		nw.AddDuplex(0, 1, 1e9, 0.001, 0)  // source → M, fast
		nw.AddDuplex(1, 2, 10e6, 0.005, 0) // M → sink, slow, unbounded queue
		nw.SetFlowPath(1, []int{0, 1, 2})
		nw.SetFlowPath(1, []int{2, 1, 0})
		bottleneck := nw.Link(1, 2)
		// One initial window exactly (10 segments): the entire flow goes out
		// as the pre-ACK-clock burst that pacing is meant to smooth.
		c := &TCPConn{Net: nw, Flow: 1, Src: 0, Dst: 2, FlowSize: 14_600,
			Pacing: pacing, InitRTT: 0.05}
		c.Start()
		sim.Run(30)
		return bottleneck.MaxQueueLen()
	}
	unpaced := run(false)
	paced := run(true)
	if paced >= unpaced {
		t.Fatalf("pacing did not reduce peak queue: paced=%d unpaced=%d", paced, unpaced)
	}
	t.Logf("peak bottleneck queue: unpaced=%d pkts, paced=%d pkts", unpaced, paced)
}

func TestTCPFCTUnaffectedByPacingOnCleanPath(t *testing.T) {
	// Fig 6(b): pacing does not hurt flow completion times materially.
	run := func(pacing bool) float64 {
		sim, nw := twoNodeTCP(100e6, 0.005, 0)
		var fct float64
		c := &TCPConn{Net: nw, Flow: 1, Src: 0, Dst: 1, FlowSize: 100_000,
			Pacing: pacing, InitRTT: 0.01, Done: func(f float64) { fct = f }}
		c.Start()
		sim.Run(10)
		return fct
	}
	up, p := run(false), run(true)
	if up == 0 || p == 0 {
		t.Fatal("a transfer did not finish")
	}
	if p > up*3 {
		t.Fatalf("pacing tripled FCT: %v vs %v", p, up)
	}
}

func TestTCPSmallFlow(t *testing.T) {
	sim, nw := twoNodeTCP(10e6, 0.001, 0)
	done := false
	c := &TCPConn{Net: nw, Flow: 1, Src: 0, Dst: 1, FlowSize: 100, // < 1 MSS
		Done: func(f float64) { done = true }}
	c.Start()
	sim.Run(5)
	if !done {
		t.Fatal("sub-MSS flow did not complete")
	}
}

func TestTCPFastRecoverySingleLossNoRTO(t *testing.T) {
	// A single mid-flow loss must be repaired by fast retransmit + fast
	// recovery, without the retransmission timer ever firing. Before the
	// recovery fix, a loss-side window of dup ACKs transmitted nothing and
	// the flow stalled until RTO — silently inflating every reported FCT.
	sim, nw := twoNodeTCP(10e6, 0.005, 0)
	dropped := false
	nw.Link(0, 1).Drop = func(p *Packet) bool {
		if p.Kind == Data && p.Seq == 30 && !dropped {
			dropped = true
			return true
		}
		return false
	}
	var fct float64 = -1
	c := &TCPConn{Net: nw, Flow: 1, Src: 0, Dst: 1, FlowSize: 200_000, InitRTT: 0.01,
		Done: func(f float64) { fct = f }}
	c.Start()
	sim.Run(30)
	if !dropped {
		t.Fatal("loss injection never triggered")
	}
	if fct < 0 {
		t.Fatal("transfer did not complete after a single loss")
	}
	if c.RTOCount != 0 {
		t.Fatalf("RTO fired %d times; fast recovery should repair a single loss", c.RTOCount)
	}
	// Clean-path FCT for this transfer is ~0.19 s; one fast-recovered loss
	// costs about an RTT plus the halved window, not an RTO (>= 200 ms).
	if fct > 0.5 {
		t.Fatalf("FCT %.3f s suggests a stall, not fast recovery", fct)
	}
}

func TestTCPDupAckInflationKeepsSending(t *testing.T) {
	// During recovery, each additional dup ACK must inflate cwnd and allow
	// a new transmission: the highest sequence on the wire should keep
	// growing between the fast retransmit and the recovery ACK.
	sim, nw := twoNodeTCP(10e6, 0.005, 0)
	dropped := false
	var sentAfterRetx []int64
	inRecoveryWindow := false
	nw.Link(0, 1).Drop = func(p *Packet) bool {
		if p.Kind != Data {
			return false
		}
		if p.Seq == 20 && !dropped {
			dropped = true
			inRecoveryWindow = true
			return true
		}
		if inRecoveryWindow && p.Seq > 20 {
			sentAfterRetx = append(sentAfterRetx, p.Seq)
		}
		return false
	}
	done := false
	c := &TCPConn{Net: nw, Flow: 1, Src: 0, Dst: 1, FlowSize: 300_000, InitRTT: 0.01,
		Done: func(f float64) { done = true }}
	c.Start()
	sim.Run(30)
	if !done {
		t.Fatal("transfer did not complete")
	}
	if len(sentAfterRetx) == 0 {
		t.Fatal("no new segments transmitted after the loss — recovery inflation missing")
	}
}

func TestTCPPendingStaysBounded(t *testing.T) {
	// The RTO timer is a single outstanding event per connection; the event
	// heap must stay O(window), not O(packets). A 2 MB transfer is ~1370
	// segments: with the old closure-per-ACK arming, hundreds of dead
	// timers accumulated in the heap.
	sim, nw := twoNodeTCP(10e6, 0.005, 50)
	done := false
	c := &TCPConn{Net: nw, Flow: 1, Src: 0, Dst: 1, FlowSize: 2_000_000, InitRTT: 0.01,
		Done: func(f float64) { done = true }}
	c.Start()
	maxPending := 0
	var sample func()
	sample = func() {
		if done {
			return
		}
		if p := sim.Pending(); p > maxPending {
			maxPending = p
		}
		sim.Schedule(0.005, sample)
	}
	sim.Schedule(0.005, sample)
	sim.Run(60)
	if !done {
		t.Fatal("transfer did not complete")
	}
	// Events at any instant: per-link tx completion (<= 4 links), in-flight
	// propagation events (<= queue + BDP), one RTO timer, one sampler.
	// The 50-packet queue bounds in-flight data; 120 is comfortably above
	// the legitimate ceiling and far below O(packets) = 1370.
	if maxPending > 120 {
		t.Fatalf("event heap grew to %d entries; RTO timers are leaking", maxPending)
	}
}

func TestTCPThroughputApproachesLineRate(t *testing.T) {
	sim, nw := twoNodeTCP(50e6, 0.002, 0)
	var fct float64
	const size = 2_000_000
	c := &TCPConn{Net: nw, Flow: 1, Src: 0, Dst: 1, FlowSize: size, InitRTT: 0.004,
		Done: func(f float64) { fct = f }}
	c.Start()
	sim.Run(30)
	if fct == 0 {
		t.Fatal("did not finish")
	}
	gput := float64(size) * 8 / fct
	if gput < 0.5*50e6 {
		t.Fatalf("goodput %v bps — less than half of the 50 Mbps line", gput)
	}
	if gput > 50e6 {
		t.Fatalf("goodput %v exceeds line rate", gput)
	}
}
