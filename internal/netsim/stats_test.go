package netsim

import (
	"math"
	"testing"
)

func TestPercentileIntsMatchesFloat(t *testing.T) {
	ints := []int{9, 1, 5, 3, 7}
	floats := []float64{9, 1, 5, 3, 7}
	for _, p := range []float64{0, 25, 50, 75, 90, 100} {
		a, b := PercentileInts(ints, p), Percentile(floats, p)
		if a != b {
			t.Fatalf("p%.0f: PercentileInts=%v Percentile=%v — the two paths diverged", p, a, b)
		}
	}
	if got := PercentileInts(ints, 50); got != 5 {
		t.Fatalf("median = %v, want 5", got)
	}
	if !math.IsNaN(PercentileInts(nil, 50)) {
		t.Fatal("empty int percentile should be NaN")
	}
	// Input must not be reordered.
	if ints[0] != 9 || ints[4] != 7 {
		t.Fatalf("input mutated: %v", ints)
	}
}

func TestPercentileInterpolates(t *testing.T) {
	vals := []float64{10, 20}
	if got := Percentile(vals, 50); got != 15 {
		t.Fatalf("p50 of {10,20} = %v, want 15 (linear interpolation)", got)
	}
	if got := PercentileInts([]int{10, 20}, 25); got != 12.5 {
		t.Fatalf("p25 of {10,20} = %v, want 12.5", got)
	}
}
