// Package maporder implements the cisplint analyzer that catches
// map-iteration-order dependence — the class of bug that breaks
// bit-identical fan-out merges (DESIGN.md §9). Go randomizes map iteration
// order on purpose, so a `range` over a map whose body appends to a
// slice, accumulates floating point, or writes output produces different
// bytes on different runs. The fix is the sorted-key idiom: collect the
// keys, sort them, iterate the sorted slice. The analyzer recognizes that
// idiom (an appended slice that is sorted after the loop) and stays
// silent for order-insensitive bodies (counters, map writes, min/max).
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"cisp/internal/analysis"
)

// Analyzer flags order-dependent effects inside range-over-map bodies.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flags range-over-map bodies that append to slices, accumulate floats or write " +
		"output: map order is randomized, so these produce run-dependent results; iterate sorted keys",
	Run: run,
}

// writeMethods are method names treated as emitting output: hitting one
// of these inside a map range writes bytes in randomized order.
var writeMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Print": true, "Printf": true, "Println": true, "Encode": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		analysis.WithStack(f, func(n ast.Node, stack []ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			checkBody(pass, rs, enclosingFuncBody(stack))
			return true
		})
	}
	return nil
}

// enclosingFuncBody returns the innermost function body on the stack (the
// scope in which a sort-after-the-loop can redeem an append).
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}

func checkBody(pass *analysis.Pass, rs *ast.RangeStmt, funcBody *ast.BlockStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			checkAssign(pass, rs, funcBody, n)
		case *ast.CallExpr:
			checkOutputCall(pass, rs, n)
		}
		return true
	})
}

func checkAssign(pass *analysis.Pass, rs *ast.RangeStmt, funcBody *ast.BlockStmt, as *ast.AssignStmt) {
	// Appends: x = append(x, ...) building a slice in map order.
	if as.Tok == token.ASSIGN || as.Tok == token.DEFINE {
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !isBuiltinAppend(pass, call) || i >= len(as.Lhs) {
				continue
			}
			obj := baseObject(pass, as.Lhs[i])
			if obj == nil || declaredWithin(obj, rs) {
				continue
			}
			if indexedByRangeVar(pass, rs, as.Lhs[i]) {
				continue // per-key map slot: each iteration owns its entry
			}
			if sortedAfter(pass, funcBody, obj, rs.End()) {
				continue // the sorted-key idiom: append then sort
			}
			pass.Reportf(as.Pos(),
				"append to %s during range over map builds a slice in randomized order; iterate sorted keys or sort %s afterwards",
				obj.Name(), obj.Name())
		}
	}

	// Floating-point accumulation: += is not associative in float
	// arithmetic, so the sum depends on iteration order bit-for-bit.
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		reportFloatAccum(pass, rs, as, as.Lhs[0])
	case token.ASSIGN:
		// x = x + y spelled out.
		if len(as.Lhs) == 1 && len(as.Rhs) == 1 {
			if bin, ok := ast.Unparen(as.Rhs[0]).(*ast.BinaryExpr); ok &&
				(bin.Op == token.ADD || bin.Op == token.SUB || bin.Op == token.MUL || bin.Op == token.QUO) {
				lhsObj := baseObject(pass, as.Lhs[0])
				xObj := baseObject(pass, bin.X)
				if lhsObj != nil && lhsObj == xObj {
					reportFloatAccum(pass, rs, as, as.Lhs[0])
				}
			}
		}
	}
}

func reportFloatAccum(pass *analysis.Pass, rs *ast.RangeStmt, as *ast.AssignStmt, lhs ast.Expr) {
	obj := baseObject(pass, lhs)
	if obj == nil || declaredWithin(obj, rs) {
		return
	}
	if indexedByRangeVar(pass, rs, lhs) {
		return // per-key map slot: each iteration owns its entry
	}
	t := pass.Info.TypeOf(lhs)
	if t == nil {
		return
	}
	if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
		pass.Reportf(as.Pos(),
			"floating-point accumulation into %s during range over map is order-dependent (float addition is not associative); iterate sorted keys",
			obj.Name())
	}
}

func checkOutputCall(pass *analysis.Pass, rs *ast.RangeStmt, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj := pass.Info.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok {
		return
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		return
	}
	if sig.Recv() == nil {
		// Package-level writer: fmt.Print*/Fprint* emit in map order.
		if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" &&
			(strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")) {
			pass.Reportf(call.Pos(),
				"fmt.%s during range over map writes output in randomized order; iterate sorted keys", fn.Name())
		}
		return
	}
	if writeMethods[fn.Name()] {
		pass.Reportf(call.Pos(),
			"%s.%s during range over map writes output in randomized order; iterate sorted keys",
			exprString(sel.X), fn.Name())
	}
}

// exprString renders a short receiver label for diagnostics.
func exprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return exprString(e.Fun) + "()"
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	}
	return "receiver"
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// baseObject resolves the variable at the root of an lvalue chain
// (x, x.f, x[i], *x → x).
func baseObject(pass *analysis.Pass, e ast.Expr) *types.Var {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj, _ := pass.Info.Uses[v].(*types.Var)
			if obj == nil {
				obj, _ = pass.Info.Defs[v].(*types.Var)
			}
			return obj
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// indexedByRangeVar reports whether lhs writes an index expression over a
// map whose index mentions the range statement's key or value variable:
// each iteration then touches its own entry (range keys are unique), so
// iteration order cannot matter.
func indexedByRangeVar(pass *analysis.Pass, rs *ast.RangeStmt, lhs ast.Expr) bool {
	ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
	if !ok {
		return false
	}
	t := pass.Info.TypeOf(ix.X)
	if t == nil {
		return false
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return false
	}
	rangeVars := make(map[types.Object]bool, 2)
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok {
			if obj := pass.Info.Defs[id]; obj != nil {
				rangeVars[obj] = true
			} else if obj := pass.Info.Uses[id]; obj != nil {
				rangeVars[obj] = true
			}
		}
	}
	found := false
	ast.Inspect(ix.Index, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.Info.Uses[id]; obj != nil && rangeVars[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// declaredWithin reports whether the object is declared inside the range
// statement (loop-local state resets every iteration and cannot carry
// order dependence out of the loop).
func declaredWithin(obj types.Object, rs *ast.RangeStmt) bool {
	return obj.Pos() >= rs.Pos() && obj.Pos() <= rs.End()
}

// sortNames is the set of sorting calls that redeem an in-loop append:
// sort.X(keys) / slices.X(keys) after the loop makes the order canonical.
var sortNames = map[string]bool{
	"Sort": true, "Stable": true, "Slice": true, "SliceStable": true,
	"Strings": true, "Ints": true, "Float64s": true,
	"SortFunc": true, "SortStableFunc": true,
}

// sortedAfter reports whether obj is passed to a sort.*/slices.* call
// located after pos within the enclosing function body.
func sortedAfter(pass *analysis.Pass, funcBody *ast.BlockStmt, obj *types.Var, pos token.Pos) bool {
	if funcBody == nil {
		return false
	}
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if (fn.Pkg().Path() == "sort" || fn.Pkg().Path() == "slices") && sortNames[fn.Name()] {
			for _, arg := range call.Args {
				if baseObject(pass, arg) == obj {
					found = true
					break
				}
			}
		}
		return true
	})
	return found
}
