// Package cost implements the paper's §2 cost model: microwave link install
// costs, new-tower construction, tower rent as the dominant opex, and the
// 5-year amortised cost per gigabyte that headlines the evaluation ($0.81/GB
// for the 100 Gbps US design).
package cost

// Model holds the §2 cost parameters. The zero value is not useful; use
// DefaultModel.
type Model struct {
	LinkInstall1G   float64 // $ per bidirectional 1 Gbps hop install on existing towers
	LinkInstall500M float64 // $ per bidirectional 500 Mbps hop install
	NewTower        float64 // $ per newly built tower
	TowerRentYear   float64 // $ per tower per year (dominant opex)
	AmortYears      float64 // amortisation horizon
}

// DefaultModel returns the paper's numbers: $150K per 1 Gbps link install,
// $75K per 500 Mbps, $100K per new tower, $25–50K/yr rent (we take the
// midpoint $37.5K), amortised over 5 years.
func DefaultModel() Model {
	return Model{
		LinkInstall1G:   150_000,
		LinkInstall500M: 75_000,
		NewTower:        100_000,
		TowerRentYear:   37_500,
		AmortYears:      5,
	}
}

// Bill is an itemised cost for a provisioned network.
type Bill struct {
	HopInstalls int // 1 Gbps radio installs (hop × series)
	NewTowers   int // towers that had to be built
	TowersUsed  int // all towers rented (existing + new), across all series

	Capex    float64 // install + construction
	OpexYear float64 // rent per year
}

// Compute fills the dollar fields from the counts using model m.
func (m Model) Compute(hopInstalls, newTowers, towersUsed int) Bill {
	b := Bill{HopInstalls: hopInstalls, NewTowers: newTowers, TowersUsed: towersUsed}
	b.Capex = float64(hopInstalls)*m.LinkInstall1G + float64(newTowers)*m.NewTower
	b.OpexYear = float64(towersUsed) * m.TowerRentYear
	return b
}

// Total returns the all-in cost over the amortisation horizon.
func (m Model) Total(b Bill) float64 {
	return b.Capex + b.OpexYear*m.AmortYears
}

// CostPerGB amortises the bill over the bytes moved at the given sustained
// aggregate throughput (Gbps) across the amortisation horizon — the paper's
// headline metric.
func (m Model) CostPerGB(b Bill, aggregateGbps float64) float64 {
	if aggregateGbps <= 0 {
		return 0
	}
	secs := m.AmortYears * 365 * 24 * 3600
	gigabytes := aggregateGbps / 8 * secs
	return m.Total(b) / gigabytes
}
