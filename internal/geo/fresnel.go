package geo

import (
	"math"

	"cisp/internal/units"
)

// Microwave link-engineering constants used throughout the paper's §3.1.
const (
	// DefaultFrequencyGHz is the microwave carrier frequency assumed by the
	// paper's hop-feasibility study (f = 11 GHz, in the lightly licensed
	// 6–18 GHz band).
	DefaultFrequencyGHz = 11.0

	// DefaultRefraction is the effective Earth-radius factor K accounting
	// for atmospheric refraction (the paper adopts K = 1.3).
	DefaultRefraction = 1.3
)

// MaxHopRange is the paper's practicable maximum tower-to-tower hop
// length ("a maximum range of around 100 km is practicable").
const MaxHopRange units.Meters = 100e3

// FresnelRadius returns the first Fresnel-zone radius at a point d1 from
// one antenna and d2 from the other, for a carrier at fGHz gigahertz. A
// microwave hop needs this ellipsoidal region clear of obstructions. At
// the midpoint of a hop of length D this reduces to the paper's
// hFres ≈ 8.7 m · sqrt(D/1km) · (f/1GHz)^(-1/2).
func FresnelRadius(d1, d2 units.Meters, fGHz float64) units.Meters {
	total := d1 + d2
	if total <= 0 || fGHz <= 0 {
		return 0
	}
	// r = 17.32 m * sqrt((d1km * d2km) / (Dkm * fGHz))
	d1km, d2km, dkm := float64(d1.Km()), float64(d2.Km()), float64(total.Km())
	return units.Meters(17.32 * math.Sqrt(d1km*d2km/(dkm*fGHz)))
}

// FresnelMid returns the first Fresnel-zone radius at the midpoint of a hop
// of length d (the paper's hFres formula).
func FresnelMid(d units.Meters, fGHz float64) units.Meters {
	return FresnelRadius(d/2, d/2, fGHz)
}

// EarthBulge returns the height by which the Earth's curvature rises
// above the straight sight-line at a point d1 from one end of a hop and
// d2 from the other, using effective Earth-radius factor k. At the
// midpoint of a hop of length D this reduces to the paper's
// hEarth ≈ (1 m / 50K) · (D/1km)².
func EarthBulge(d1, d2 units.Meters, k float64) units.Meters {
	if k <= 0 {
		return units.Meters(math.Inf(1))
	}
	// h[m] = d1[km] * d2[km] / (12.74 * k)
	return units.Meters(float64(d1.Km()) * float64(d2.Km()) / (12.74 * k))
}

// EarthBulgeMid returns the curvature bulge at the midpoint of a hop of
// length d.
func EarthBulgeMid(d units.Meters, k float64) units.Meters { return EarthBulge(d/2, d/2, k) }

// RequiredClearanceMid returns the total height that a hop of length d
// must clear at its midpoint: Earth bulge plus a full first Fresnel
// zone (the paper requires a fully clear Fresnel zone).
func RequiredClearanceMid(d units.Meters, fGHz, k float64) units.Meters {
	return EarthBulgeMid(d, k) + FresnelMid(d, fGHz)
}
