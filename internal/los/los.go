// Package los evaluates microwave hop feasibility between towers: §3.1's
// line-of-sight test with full first-Fresnel-zone clearance over terrain and
// clutter, Earth-curvature bulge under atmospheric refraction K, and the
// range and usable-antenna-height restrictions studied in §6.5.
package los

import (
	"math"

	"cisp/internal/geo"
	"cisp/internal/terrain"
	"cisp/internal/towers"
	"cisp/internal/units"
)

// Params configures the feasibility test. The zero value is not useful; use
// DefaultParams (the paper's baseline: f=11 GHz, K=1.3, 100 km range, tower
// tops usable).
type Params struct {
	FreqGHz          float64      // carrier frequency
	K                float64      // effective Earth-radius factor
	MaxRange         units.Meters // maximum hop length
	UsableHeightFrac float64      // fraction of tower height available for antennae (§6.5)
	ProfileStep      units.Meters // terrain sampling step
}

// DefaultParams returns the paper's baseline §3.1/§4 parameters.
func DefaultParams() Params {
	return Params{
		FreqGHz:          geo.DefaultFrequencyGHz,
		K:                geo.DefaultRefraction,
		MaxRange:         geo.MaxHopRange,
		UsableHeightFrac: 1.0,
		ProfileStep:      500,
	}
}

// Evaluator tests hop feasibility over a terrain model.
type Evaluator struct {
	Terrain *terrain.Model
	Params  Params
}

// NewEvaluator returns an evaluator with the given terrain and parameters.
func NewEvaluator(t *terrain.Model, p Params) *Evaluator {
	if p.ProfileStep <= 0 {
		p.ProfileStep = 500
	}
	return &Evaluator{Terrain: t, Params: p}
}

// AntennaHeight returns the height above ground at which an antenna can be
// mounted on the tower under the usable-height restriction.
func (e *Evaluator) AntennaHeight(t towers.Tower) float64 {
	f := e.Params.UsableHeightFrac
	if f <= 0 || f > 1 {
		f = 1
	}
	return t.Height * f
}

// HopFeasible reports whether a microwave hop between towers a and b clears
// terrain, clutter, Earth bulge, and a full first Fresnel zone, and is
// within range.
func (e *Evaluator) HopFeasible(a, b towers.Tower) bool {
	return e.hopFeasibleAt(a.Loc, b.Loc, e.antennaASL(a), e.antennaASL(b))
}

// PointFeasible is HopFeasible for arbitrary endpoints with explicit
// above-sea-level antenna heights (used for city gateway attachments).
func (e *Evaluator) PointFeasible(a, b geo.Point, aASL, bASL float64) bool {
	return e.hopFeasibleAt(a, b, aASL, bASL)
}

// antennaASL is the antenna's height above sea level.
func (e *Evaluator) antennaASL(t towers.Tower) float64 {
	return e.Terrain.Elevation(t.Loc) + e.AntennaHeight(t)
}

func (e *Evaluator) hopFeasibleAt(pa, pb geo.Point, ha, hb float64) bool {
	total := pa.DistanceTo(pb)
	if total > e.Params.MaxRange {
		return false
	}
	if total <= 0 {
		return true
	}
	// Adaptive sampling: never more than ~200 samples, never coarser than
	// the configured step over long hops.
	step := e.Params.ProfileStep
	if minStep := total / 200; step < minStep {
		step = minStep
	}
	n := int(total/step) + 1
	if n < 2 {
		n = 2
	}
	for i := 1; i < n; i++ {
		f := float64(i) / float64(n)
		d1 := units.Meters(float64(total) * f)
		d2 := total - d1
		p := pa.Intermediate(pb, f)
		// Straight sight-line height at this point.
		line := ha + (hb-ha)*f
		// Required clearance: surface + curvature bulge + full Fresnel zone.
		needed := e.Terrain.SurfaceHeight(p) +
			float64(geo.EarthBulge(d1, d2, e.Params.K)) +
			float64(geo.FresnelRadius(d1, d2, e.Params.FreqGHz))
		if line < needed {
			return false
		}
	}
	return true
}

// ClearanceMargin returns the minimum clearance margin in meters along the
// hop (line height minus required height); negative means infeasible. Range
// violations return -Inf. Useful for diagnostics and tests.
func (e *Evaluator) ClearanceMargin(a, b towers.Tower) float64 {
	pa, pb := a.Loc, b.Loc
	total := pa.DistanceTo(pb)
	if total > e.Params.MaxRange {
		return math.Inf(-1)
	}
	ha, hb := e.antennaASL(a), e.antennaASL(b)
	step := e.Params.ProfileStep
	if minStep := total / 200; step < minStep {
		step = minStep
	}
	n := int(total/step) + 1
	if n < 2 {
		n = 2
	}
	margin := math.Inf(1)
	for i := 1; i < n; i++ {
		f := float64(i) / float64(n)
		d1 := units.Meters(float64(total) * f)
		d2 := total - d1
		p := pa.Intermediate(pb, f)
		line := ha + (hb-ha)*f
		needed := e.Terrain.SurfaceHeight(p) +
			float64(geo.EarthBulge(d1, d2, e.Params.K)) +
			float64(geo.FresnelRadius(d1, d2, e.Params.FreqGHz))
		if m := line - needed; m < margin {
			margin = m
		}
	}
	return margin
}
