// Package lpslack re-expresses the PR 5 LP-conditioning bug as a unitcheck
// regression. The TE LP's capacity rows are normalized to utilization
// units: each coefficient and the right-hand side are divided by link
// capacity before entering the constraint matrix (internal/te/lpsolve.go).
// The pre-fix form fed raw bits-per-second magnitudes into a
// utilization-bounded row, ill-conditioning the simplex tableau — exactly
// the relabeling cast unitcheck reports.
package lpslack

import "cisp/internal/units"

// slackPreFix is the pre-fix shape: the base load enters the utilization
// bound without being normalized by capacity.
func slackPreFix(u0 units.Utilization, base, cap units.BitsPerSecond) units.Utilization {
	return u0 - units.Utilization(base) // want `relabels data rate as dimensionless`
}

// slackFixed is the PR 5 fix: normalize by capacity first; the erased
// ratio is a genuine utilization.
func slackFixed(u0 units.Utilization, base, cap units.BitsPerSecond) units.Utilization {
	return u0 - units.Utilization(float64(base)/float64(cap))
}

// slackTyped is the same fix in typed form.
func slackTyped(u0 units.Utilization, base, cap units.BitsPerSecond) units.Utilization {
	return u0 - units.Of(base, cap)
}
