package gaming

import "testing"

func TestConventionalGrowsWithRTT(t *testing.T) {
	cfg := Config{Seed: 1}
	r100 := SimulateConventional(100, cfg)
	r300 := SimulateConventional(300, cfg)
	if r300.MeanFrameMs <= r100.MeanFrameMs {
		t.Fatal("frame time should grow with RTT")
	}
	// Slope ≈ 1 per ms of RTT.
	slope := (r300.MeanFrameMs - r100.MeanFrameMs) / 200
	if slope < 0.9 || slope > 1.1 {
		t.Fatalf("conventional slope = %v, want ~1", slope)
	}
}

func TestAugmentedFlattensCurve(t *testing.T) {
	// Fig 12: the augmented line grows at ~1/3 the slope and sits far below
	// the conventional line at high RTT.
	cfg := Config{Seed: 2}
	rtts := []float64{0, 50, 100, 150, 200, 250, 300}
	conv, aug := FrameTimeCurve(rtts, 1.0/3, cfg)
	for i := range rtts {
		if aug[i] > conv[i]+1 {
			t.Fatalf("augmented (%.0f) worse than conventional (%.0f) at RTT %.0f",
				aug[i], conv[i], rtts[i])
		}
	}
	convSlope := (conv[len(conv)-1] - conv[0]) / 300
	augSlope := (aug[len(aug)-1] - aug[0]) / 300
	if augSlope > convSlope*0.45 {
		t.Fatalf("augmented slope %.2f not ~1/3 of conventional %.2f", augSlope, convSlope)
	}
	// At 300 ms the gap should be substantial (paper: ~500 vs ~250 ms).
	if conv[len(conv)-1]-aug[len(aug)-1] < 150 {
		t.Fatalf("at 300ms RTT: conventional %.0f vs augmented %.0f — gap too small",
			conv[len(conv)-1], aug[len(aug)-1])
	}
}

func TestZeroRTTEquivalence(t *testing.T) {
	// With no network latency both modes reduce to processing time.
	cfg := Config{Seed: 3}
	conv := SimulateConventional(0, cfg)
	aug := SimulateAugmented(0, 0, cfg)
	if diff := conv.MeanFrameMs - aug.MeanFrameMs; diff > 10 || diff < -10 {
		t.Fatalf("at zero RTT modes differ by %v ms", diff)
	}
	if conv.MeanFrameMs < 120 || conv.MeanFrameMs > 160 {
		t.Fatalf("processing-only frame time %v outside configured ~140ms", conv.MeanFrameMs)
	}
}

func TestSpeculationMissesFallBack(t *testing.T) {
	// With a 50% hit rate the augmented mean sits between the pure-low and
	// pure-conventional cases.
	cfg := Config{Seed: 4, SpecHitRate: 0.5}
	full := SimulateAugmented(300, 100, Config{Seed: 4, SpecHitRate: 1})
	half := SimulateAugmented(300, 100, cfg)
	conv := SimulateConventional(300, Config{Seed: 4})
	if !(half.MeanFrameMs > full.MeanFrameMs && half.MeanFrameMs < conv.MeanFrameMs) {
		t.Fatalf("half-hit mean %v not between full-hit %v and conventional %v",
			half.MeanFrameMs, full.MeanFrameMs, conv.MeanFrameMs)
	}
}

func TestBandwidthOverheadReported(t *testing.T) {
	// Speculation streams one outcome per direction: 4× for Pacman, within
	// the paper's quoted 2-4.5× band for richer games.
	r := SimulateAugmented(100, 33, Config{Seed: 5})
	if r.BandwidthFactor != 4 {
		t.Fatalf("bandwidth factor = %v, want 4 (four speculated directions)", r.BandwidthFactor)
	}
	if c := SimulateConventional(100, Config{Seed: 5}); c.BandwidthFactor != 1 {
		t.Fatalf("conventional bandwidth factor = %v, want 1", c.BandwidthFactor)
	}
}

func TestDeterminism(t *testing.T) {
	a := SimulateAugmented(200, 66, Config{Seed: 9})
	b := SimulateAugmented(200, 66, Config{Seed: 9})
	if a.MeanFrameMs != b.MeanFrameMs || a.P95FrameMs != b.P95FrameMs {
		t.Fatal("simulation not deterministic")
	}
}

func TestP95AboveMean(t *testing.T) {
	r := SimulateConventional(150, Config{Seed: 6})
	if r.P95FrameMs < r.MeanFrameMs {
		t.Fatalf("p95 (%v) below mean (%v)", r.P95FrameMs, r.MeanFrameMs)
	}
}
