package te

import (
	"math"
	"testing"

	"cisp/internal/netsim"
	"cisp/internal/units"
)

// diamond is the canonical split fixture: two disjoint equal-capacity paths
// 0-1-3 (fast) and 0-2-3 (slower but inside the stretch cap).
func diamond() []netsim.TopoLink {
	return []netsim.TopoLink{
		{A: 0, B: 1, RateBps: 10e6, PropDelay: 0.002},
		{A: 1, B: 3, RateBps: 10e6, PropDelay: 0.002},
		{A: 0, B: 2, RateBps: 10e6, PropDelay: 0.0025},
		{A: 2, B: 3, RateBps: 10e6, PropDelay: 0.0025},
	}
}

func TestYenEnumeratesDiversePaths(t *testing.T) {
	g, err := buildGraph(4, diamond())
	if err != nil {
		t.Fatal(err)
	}
	paths := yen(g, newScratch(g), 0, 3, 4, 2.0)
	if len(paths) != 2 {
		t.Fatalf("got %d paths, want 2 (the disjoint diamond arms)", len(paths))
	}
	if paths[0].Delay >= paths[1].Delay {
		t.Fatalf("paths not delay-sorted: %v then %v", paths[0].Delay, paths[1].Delay)
	}
	want := [][]int{{0, 1, 3}, {0, 2, 3}}
	for i, p := range paths {
		if len(p.Nodes) != 3 {
			t.Fatalf("path %d = %v, want 3 nodes", i, p.Nodes)
		}
		for j, v := range want[i] {
			if p.Nodes[j] != v {
				t.Fatalf("path %d = %v, want %v", i, p.Nodes, want[i])
			}
		}
	}
}

func TestYenStretchCap(t *testing.T) {
	// The 0-2-3 arm is 25% longer than 0-1-3; a stretch cap of 1.2 must
	// exclude it.
	g, _ := buildGraph(4, diamond())
	paths := yen(g, newScratch(g), 0, 3, 4, 1.2)
	if len(paths) != 1 {
		t.Fatalf("got %d paths under stretch 1.2, want 1", len(paths))
	}
}

func TestYenLongerGraph(t *testing.T) {
	// A 5-node graph with three routes 0→4 of distinct delays, including
	// ones sharing edges — Yen must produce loopless, distinct paths in
	// delay order.
	links := []netsim.TopoLink{
		{A: 0, B: 1, RateBps: 1, PropDelay: 1},
		{A: 1, B: 4, RateBps: 1, PropDelay: 1},
		{A: 0, B: 2, RateBps: 1, PropDelay: 1},
		{A: 2, B: 4, RateBps: 1, PropDelay: 1.5},
		{A: 1, B: 2, RateBps: 1, PropDelay: 0.1},
		{A: 0, B: 3, RateBps: 1, PropDelay: 3},
		{A: 3, B: 4, RateBps: 1, PropDelay: 3},
	}
	g, _ := buildGraph(5, links)
	paths := yen(g, newScratch(g), 0, 4, 10, 10)
	if len(paths) < 3 {
		t.Fatalf("got %d paths, want >= 3", len(paths))
	}
	for i := 1; i < len(paths); i++ {
		if paths[i].Delay < paths[i-1].Delay {
			t.Fatalf("paths out of delay order at %d: %v", i, paths)
		}
	}
	seen := map[string]bool{}
	for _, p := range paths {
		inPath := map[int]bool{}
		key := ""
		for _, v := range p.Nodes {
			if inPath[v] {
				t.Fatalf("loop in path %v", p.Nodes)
			}
			inPath[v] = true
			key += string(rune('a' + v))
		}
		if seen[key] {
			t.Fatalf("duplicate path %v", p.Nodes)
		}
		seen[key] = true
	}
}

func TestBuildGraphRejectsParallelEdges(t *testing.T) {
	links := append(diamond(), netsim.TopoLink{A: 0, B: 1, RateBps: 1e6, PropDelay: 0.01})
	if _, err := buildGraph(4, links); err == nil {
		t.Fatal("no error for parallel directed links")
	}
}

// TestSolveBalancesDiamond: one commodity at 150% of a single arm's
// capacity must split across both arms, halving the MLU relative to
// shortest-path routing.
func TestSolveBalancesDiamond(t *testing.T) {
	links := diamond()
	comms := []netsim.Commodity{{Flow: 1, Src: 0, Dst: 3, Demand: 15e6}}
	sol, err := Solve(4, links, comms, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Method != "lp" {
		t.Fatalf("method = %q, want lp", sol.Method)
	}
	sp := sol.Splits[1]
	if len(sp) != 2 {
		t.Fatalf("splits = %+v, want both arms", sp)
	}
	if math.Abs(float64(sol.MLU)-0.75) > 1e-6 {
		t.Fatalf("MLU = %v, want 0.75 (15 Mbps over 2×10 Mbps arms)", sol.MLU)
	}
	total := 0.0
	for _, s := range sp {
		total += s.Frac
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("fractions sum to %v, want 1", total)
	}
	// Single-path routing pins 15 Mbps on a 10 Mbps arm: MLU 1.5.
	spMLU, err := MLUOf(4, links, comms, map[int][]netsim.SplitPath{
		1: {{Path: []int{0, 1, 3}, Frac: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if spMLU <= sol.MLU {
		t.Fatalf("shortest-path MLU %v not worse than TE MLU %v", spMLU, sol.MLU)
	}
}

// TestSolvePrefersShortPathWhenUncongested: with demand far below one arm's
// capacity the delay tie-break must keep everything on the fast arm.
func TestSolvePrefersShortPathWhenUncongested(t *testing.T) {
	comms := []netsim.Commodity{{Flow: 1, Src: 0, Dst: 3, Demand: 1e6}}
	sol, err := Solve(4, diamond(), comms, Config{})
	if err != nil {
		t.Fatal(err)
	}
	sp := sol.Splits[1]
	if len(sp) != 1 || sp[0].Frac < 0.999 {
		t.Fatalf("splits = %+v, want all on the fast arm", sp)
	}
	if sp[0].Path[1] != 1 {
		t.Fatalf("path = %v, want via node 1 (lower delay)", sp[0].Path)
	}
}

// TestStretchCapBindsInSolve: with a tight stretch cap the slower arm is
// not a candidate, so the solver cannot split even under overload.
func TestStretchCapBindsInSolve(t *testing.T) {
	comms := []netsim.Commodity{{Flow: 1, Src: 0, Dst: 3, Demand: 15e6}}
	sol, err := Solve(4, diamond(), comms, Config{Stretch: 1.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Splits[1]) != 1 {
		t.Fatalf("splits = %+v, want single path under stretch 1.1", sol.Splits[1])
	}
	if math.Abs(float64(sol.MLU)-1.5) > 1e-6 {
		t.Fatalf("MLU = %v, want 1.5", sol.MLU)
	}
}

// grid builds an x×y grid topology with uniform link capacity — enough
// path diversity to exercise the block and greedy solvers.
func grid(x, y int, capBps units.BitsPerSecond) (int, []netsim.TopoLink) {
	id := func(i, j int) int { return i*y + j }
	var links []netsim.TopoLink
	for i := 0; i < x; i++ {
		for j := 0; j < y; j++ {
			if i+1 < x {
				links = append(links, netsim.TopoLink{A: id(i, j), B: id(i+1, j), RateBps: capBps, PropDelay: 0.001})
			}
			if j+1 < y {
				links = append(links, netsim.TopoLink{A: id(i, j), B: id(i, j+1), RateBps: capBps, PropDelay: 0.001})
			}
		}
	}
	return x * y, links
}

func gridComms(n, count int) []netsim.Commodity {
	comms := make([]netsim.Commodity, count)
	for k := 0; k < count; k++ {
		src := (k * 7) % n
		dst := (src + 1 + (k*13)%(n-1)) % n
		comms[k] = netsim.Commodity{Flow: k + 1, Src: src, Dst: dst, Demand: units.BitsPerSecond(1e6 + float64(k%5)*4e5)}
	}
	return comms
}

// TestMethodSelectionAndOrdering: the same congested grid instance solved
// globally, in blocks, and greedily. Every method must satisfy
// conservation, route every commodity, and improve on all-shortest-path
// routing. Stretch 3 keeps grid detours (3 hops vs 1) inside the candidate
// sets so there is real path diversity.
func TestMethodSelectionAndOrdering(t *testing.T) {
	n, links := grid(4, 4, 5e6)
	comms := gridComms(n, 40)

	solLP, err := Solve(n, links, comms, Config{Stretch: 3, LPVarLimit: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	if solLP.Method != "lp" {
		t.Fatalf("method = %q, want lp", solLP.Method)
	}
	solBlock, err := Solve(n, links, comms, Config{Stretch: 3, LPVarLimit: 60, BlockSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if solBlock.Method != "block-lp" {
		t.Fatalf("method = %q, want block-lp", solBlock.Method)
	}
	solGreedy, err := Solve(n, links, comms, Config{Stretch: 3, LPVarLimit: 20, BlockSize: 8, WaterQuanta: 16})
	if err != nil {
		t.Fatal(err)
	}
	if solGreedy.Method != "greedy" {
		t.Fatalf("method = %q, want greedy", solGreedy.Method)
	}

	// All-shortest-path baseline.
	base := map[int][]netsim.SplitPath{}
	g, _ := buildGraph(n, links)
	scratch := newScratch(g)
	for _, cm := range comms {
		eids, _ := scratch.run(g, cm.Src, cm.Dst)
		p := g.pathFromEdges(cm.Src, eids)
		base[cm.Flow] = []netsim.SplitPath{{Path: p.Nodes, Frac: 1}}
	}
	baseMLU, err := MLUOf(n, links, comms, base)
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name string
		sol  *Solution
	}{{"lp", solLP}, {"block-lp", solBlock}, {"greedy", solGreedy}} {
		for flow, sp := range tc.sol.Splits {
			sum := 0.0
			for _, s := range sp {
				sum += s.Frac
			}
			if math.Abs(sum-1) > 1e-6 {
				t.Errorf("%s: commodity %d fractions sum to %v", tc.name, flow, sum)
			}
		}
		if len(tc.sol.Splits) != len(comms) {
			t.Errorf("%s: %d commodities routed, want %d", tc.name, len(tc.sol.Splits), len(comms))
		}
		if tc.sol.MLU >= baseMLU {
			t.Errorf("%s: MLU %v not better than shortest-path %v", tc.name, tc.sol.MLU, baseMLU)
		}
	}
}

// TestSolveDeterministicAcrossWorkers: path enumeration and the block
// solver fan out over internal/parallel; results must not depend on pool
// width.
func TestSolveDeterministicAcrossWorkers(t *testing.T) {
	n, links := grid(4, 4, 8e6)
	comms := gridComms(n, 40)
	run := func() *Solution {
		sol, err := Solve(n, links, comms, Config{Stretch: 3, LPVarLimit: 60, BlockSize: 8})
		if err != nil {
			t.Fatal(err)
		}
		return sol
	}
	a := run()
	b := run()
	if a.MLU != b.MLU {
		t.Fatalf("MLU differs across runs: %v vs %v", a.MLU, b.MLU)
	}
	for flow, sa := range a.Splits {
		sb := b.Splits[flow]
		if len(sa) != len(sb) {
			t.Fatalf("commodity %d split sizes differ", flow)
		}
		for i := range sa {
			if sa[i].Frac != sb[i].Frac {
				t.Fatalf("commodity %d frac %d differs: %v vs %v", flow, i, sa[i].Frac, sb[i].Frac)
			}
		}
	}
}

// TestControllerWarmReoptimization: degrade one diamond arm — only the
// commodity using it is affected and traffic shifts away; restore it — the
// original split comes back. A second, disjoint commodity must keep its
// split bit-identical throughout.
func TestControllerWarmReoptimization(t *testing.T) {
	links := append(diamond(),
		netsim.TopoLink{A: 4, B: 5, RateBps: 10e6, PropDelay: 0.001})
	comms := []netsim.Commodity{
		{Flow: 1, Src: 0, Dst: 3, Demand: 15e6},
		{Flow: 2, Src: 4, Dst: 5, Demand: 2e6},
	}
	ctrl, err := NewController(6, links, comms, Config{})
	if err != nil {
		t.Fatal(err)
	}
	clear := ctrl.Solution()
	if len(clear.Splits[1]) != 2 {
		t.Fatalf("clear-sky splits = %+v, want both arms", clear.Splits[1])
	}
	otherBefore := clear.Splits[2]

	// Rain kills the fast arm's first hop.
	degraded := append([]netsim.TopoLink(nil), links...)
	degraded[0].RateBps = 0
	affected, err := ctrl.UpdateCapacities(degraded)
	if err != nil {
		t.Fatal(err)
	}
	if len(affected) != 1 || affected[0] != 1 {
		t.Fatalf("affected = %v, want [1]", affected)
	}
	stormy := ctrl.Solution()
	sp := stormy.Splits[1]
	if len(sp) != 1 || sp[0].Path[1] != 2 {
		t.Fatalf("stormy splits = %+v, want everything on the 0-2-3 arm", sp)
	}
	if math.Abs(float64(stormy.MLU)-1.5) > 1e-6 {
		t.Fatalf("stormy MLU = %v, want 1.5", stormy.MLU)
	}
	if len(stormy.Splits[2]) != len(otherBefore) || stormy.Splits[2][0].Frac != otherBefore[0].Frac {
		t.Fatalf("unaffected commodity's split changed: %+v vs %+v", stormy.Splits[2], otherBefore)
	}

	// Storm passes: capacity restored, the split must rebalance.
	affected, err = ctrl.UpdateCapacities(links)
	if err != nil {
		t.Fatal(err)
	}
	if len(affected) != 1 || affected[0] != 1 {
		t.Fatalf("restore affected = %v, want [1]", affected)
	}
	restored := ctrl.Solution()
	if len(restored.Splits[1]) != 2 {
		t.Fatalf("restored splits = %+v, want both arms again", restored.Splits[1])
	}
	if math.Abs(float64(restored.MLU)-0.75) > 1e-6 {
		t.Fatalf("restored MLU = %v, want 0.75", restored.MLU)
	}

	// No-op update: nothing affected.
	affected, err = ctrl.UpdateCapacities(links)
	if err != nil {
		t.Fatal(err)
	}
	if affected != nil {
		t.Fatalf("no-op update affected %v", affected)
	}
}

// TestControllerReenumeratesWhenAllCandidatesDie: if every clear-sky
// candidate crosses downed links, the controller re-runs Yen on the
// degraded topology instead of dropping the commodity.
func TestControllerReenumeratesWhenAllCandidatesDie(t *testing.T) {
	// 0→3 via 1 (fast, the only candidate under a tight stretch cap) plus a
	// long detour via 2 that the cap excludes at clear sky.
	links := []netsim.TopoLink{
		{A: 0, B: 1, RateBps: 10e6, PropDelay: 0.001},
		{A: 1, B: 3, RateBps: 10e6, PropDelay: 0.001},
		{A: 0, B: 2, RateBps: 10e6, PropDelay: 0.01},
		{A: 2, B: 3, RateBps: 10e6, PropDelay: 0.01},
	}
	comms := []netsim.Commodity{{Flow: 1, Src: 0, Dst: 3, Demand: 1e6}}
	ctrl, err := NewController(4, links, comms, Config{Stretch: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(ctrl.Solution().Splits[1]); n != 1 {
		t.Fatalf("clear-sky candidates = %d, want 1 (stretch cap)", n)
	}
	degraded := append([]netsim.TopoLink(nil), links...)
	degraded[0].RateBps = 0
	if _, err := ctrl.UpdateCapacities(degraded); err != nil {
		t.Fatal(err)
	}
	sp := ctrl.Solution().Splits[1]
	if len(sp) != 1 || sp[0].Path[1] != 2 {
		t.Fatalf("degraded splits = %+v, want the re-enumerated detour via 2", sp)
	}
}

func TestUpdateCapacitiesRejectsTopologyChange(t *testing.T) {
	links := diamond()
	ctrl, err := NewController(4, links, []netsim.Commodity{{Flow: 1, Src: 0, Dst: 3, Demand: 1e6}}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.UpdateCapacities(links[:2]); err == nil {
		t.Fatal("no error for a shorter link list")
	}
	swapped := append([]netsim.TopoLink(nil), links...)
	swapped[0].A, swapped[0].B = 2, 3
	if _, err := ctrl.UpdateCapacities(swapped); err == nil {
		t.Fatal("no error for changed endpoints")
	}

	// A rejected update must not leak partial capacity changes: this list
	// changes link 0's rate but is invalid at link 1, so after the
	// rejection a clean update with the original capacities must see
	// nothing to do.
	bad := append([]netsim.TopoLink(nil), links...)
	bad[0].RateBps = 1e6
	bad[1].A, bad[1].B = 3, 2
	if _, err := ctrl.UpdateCapacities(bad); err == nil {
		t.Fatal("no error for mixed rate-change + endpoint-change list")
	}
	affected, err := ctrl.UpdateCapacities(links)
	if err != nil {
		t.Fatal(err)
	}
	if affected != nil {
		t.Fatalf("rejected update mutated capacities: clean update affected %v", affected)
	}
}

func TestUnroutableCommodityOmitted(t *testing.T) {
	// Node 4 is isolated.
	comms := []netsim.Commodity{
		{Flow: 1, Src: 0, Dst: 3, Demand: 1e6},
		{Flow: 2, Src: 0, Dst: 4, Demand: 1e6},
	}
	sol, err := Solve(5, diamond(), comms, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sol.Splits[2]; ok {
		t.Fatal("unroutable commodity got a split")
	}
	if _, ok := sol.Splits[1]; !ok {
		t.Fatal("routable commodity missing")
	}
}

// TestCandidatesMatchesControllerPool: the exported enumeration must return
// the same path pool a Controller with the same Config splits over, aligned
// positionally with the commodity list (empty for unroutable pairs).
func TestCandidatesMatchesControllerPool(t *testing.T) {
	comms := []netsim.Commodity{
		{Flow: 1, Src: 0, Dst: 3, Demand: 1e6},
		{Flow: 2, Src: 0, Dst: 4, Demand: 1e6}, // node 4 isolated: unroutable
	}
	cfg := Config{K: 3, Stretch: 2}
	cands, err := Candidates(5, diamond(), comms, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 2 {
		t.Fatalf("got %d candidate sets, want 2", len(cands))
	}
	if len(cands[1]) != 0 {
		t.Fatalf("unroutable commodity got %d candidates", len(cands[1]))
	}
	ctrl, err := NewController(5, diamond(), comms, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := ctrl.comms[0].cands
	if len(cands[0]) != len(want) {
		t.Fatalf("pool size %d, controller has %d", len(cands[0]), len(want))
	}
	for i := range want {
		if !sameEdges(cands[0][i].edges, want[i].edges) {
			t.Fatalf("candidate %d differs: %v vs %v", i, cands[0][i].Nodes, want[i].Nodes)
		}
	}
}

// TestLPSolvesCounter: the process-wide simplex counter must advance on a
// Solve that reaches the LP — the observable fast-reroute tests use to pin
// "zero LP solves on the event path".
func TestLPSolvesCounter(t *testing.T) {
	before := LPSolves()
	// Two commodities with real demand: the multi-candidate LP path runs.
	comms := []netsim.Commodity{
		{Flow: 1, Src: 0, Dst: 3, Demand: 15e6},
		{Flow: 2, Src: 1, Dst: 2, Demand: 5e6},
	}
	if _, err := Solve(4, diamond(), comms, Config{}); err != nil {
		t.Fatal(err)
	}
	if LPSolves() == before {
		t.Fatal("LPSolves did not advance across an LP-backed Solve")
	}
}

func TestSolveShortestSinglePath(t *testing.T) {
	// On the diamond, even an overloaded commodity stays on the single
	// fastest arm: SolveShortest never splits.
	comms := []netsim.Commodity{{Flow: 1, Src: 0, Dst: 3, Demand: 15e6}}
	sol, err := SolveShortest(4, diamond(), comms)
	if err != nil {
		t.Fatal(err)
	}
	sp := sol.Splits[1]
	if len(sp) != 1 || sp[0].Frac != 1 {
		t.Fatalf("expected one full-fraction path, got %+v", sp)
	}
	want := []int{0, 1, 3}
	for i, v := range want {
		if sp[0].Path[i] != v {
			t.Fatalf("expected the fast arm %v, got %v", want, sp[0].Path)
		}
	}
	if sol.MLU < 1.4 {
		t.Fatalf("15 Mbps over a 10 Mbps single path should predict MLU 1.5, got %v", sol.MLU)
	}
}
