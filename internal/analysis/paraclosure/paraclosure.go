// Package paraclosure implements the cisplint analyzer that guards the
// internal/parallel fan-out contract: a callback handed to parallel.For,
// Map, Reduce or Run must not write shared captured state — that is a
// data race and, even when "benign", breaks the bit-identical-results
// guarantee the worker pool exists to provide. The one sanctioned shape
// is the index-disjoint slot idiom: writing out[i] where i is the
// callback's own index argument (or a per-iteration loop variable), so
// every invocation touches a distinct element. Shared counters, captured
// maps, struct fields and writes through captured pointers are flagged;
// use atomics, a mutex with a justified //lint:allow, or parallel.Map's
// return-value plumbing instead.
package paraclosure

import (
	"go/ast"
	"go/types"

	"cisp/internal/analysis"
)

// parallelPkg is the import path of the worker-pool package whose
// callbacks are checked.
const parallelPkg = "cisp/internal/parallel"

// Analyzer flags shared-state writes in closures passed to internal/parallel.
var Analyzer = &analysis.Analyzer{
	Name: "paraclosure",
	Doc: "flags closures passed to internal/parallel that write captured variables " +
		"other than through the index-disjoint slot idiom (out[i] with i the callback's index)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		analysis.WithStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isParallelCall(pass, call) {
				return true
			}
			loopVars := loopVarsOf(pass, enclosingFunc(stack))
			for _, arg := range call.Args {
				ast.Inspect(arg, func(m ast.Node) bool {
					if lit, ok := m.(*ast.FuncLit); ok {
						checkClosure(pass, lit, loopVars)
						return false // nested lits are checked via their own walk
					}
					return true
				})
			}
			return true
		})
	}
	return nil
}

func isParallelCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		obj = pass.Info.Uses[fun.Sel]
	case *ast.Ident:
		obj = pass.Info.Uses[fun]
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	// Only the exported pool API fans callbacks out to workers; unexported
	// in-package helpers (including test fixtures) run on one goroutine.
	return fn.Pkg().Path() == parallelPkg && fn.Exported()
}

func enclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}

// loopVarsOf collects the loop variables of every for/range statement in
// the enclosing function. Since Go 1.22 these are per-iteration, so a
// closure built inside the loop owns its copy: indexing a captured slice
// by one is the disjoint-slot idiom in its parallel.Run form
// (tasks[k] = func() { out[k] = ... }).
func loopVarsOf(pass *analysis.Pass, fn ast.Node) map[*types.Var]bool {
	vars := make(map[*types.Var]bool)
	if fn == nil {
		return vars
	}
	addDef := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok {
			if v, ok := pass.Info.Defs[id].(*types.Var); ok {
				vars[v] = true
			}
			if v, ok := pass.Info.Uses[id].(*types.Var); ok {
				vars[v] = true
			}
		}
	}
	ast.Inspect(fn, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			addDef(n.Key)
			addDef(n.Value)
		case *ast.ForStmt:
			if as, ok := n.Init.(*ast.AssignStmt); ok {
				for _, lhs := range as.Lhs {
					addDef(lhs)
				}
			}
		case *ast.AssignStmt:
			// The k := k shadowing idiom keeps the copy a loop variable.
			if len(n.Lhs) == 1 && len(n.Rhs) == 1 {
				lhsID, lok := n.Lhs[0].(*ast.Ident)
				rhsID, rok := n.Rhs[0].(*ast.Ident)
				if lok && rok && lhsID.Name == rhsID.Name {
					if src, ok := pass.Info.Uses[rhsID].(*types.Var); ok && vars[src] {
						addDef(n.Lhs[0])
					}
				}
			}
		}
		return true
	})
	return vars
}

func checkClosure(pass *analysis.Pass, lit *ast.FuncLit, loopVars map[*types.Var]bool) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkWrite(pass, lit, loopVars, lhs)
			}
		case *ast.IncDecStmt:
			checkWrite(pass, lit, loopVars, n.X)
		}
		return true
	})
}

// checkWrite flags a write whose target is shared between workers.
func checkWrite(pass *analysis.Pass, lit *ast.FuncLit, loopVars map[*types.Var]bool, lhs ast.Expr) {
	e := ast.Unparen(lhs)
	for {
		switch v := e.(type) {
		case *ast.Ident:
			obj, ok := varOf(pass, v)
			if !ok || !captured(obj, lit) {
				return
			}
			pass.Reportf(lhs.Pos(),
				"parallel callback writes captured variable %s: shared state races across workers; use the index-disjoint slot idiom (out[i]) or parallel.Map/Reduce",
				obj.Name())
			return
		case *ast.IndexExpr:
			base := pass.Info.TypeOf(v.X)
			if base != nil {
				if _, isMap := base.Underlying().(*types.Map); isMap {
					if obj := rootVar(pass, v.X); obj != nil && captured(obj, lit) {
						pass.Reportf(lhs.Pos(),
							"parallel callback writes captured map %s: concurrent map writes race; collect per-chunk results and merge after the fan-out",
							obj.Name())
					}
					return
				}
			}
			// Slice/array slot: disjoint if the index is derived from the
			// callback's own locals/params or a per-iteration loop var.
			if indexIsDisjoint(pass, v.Index, lit, loopVars) {
				return
			}
			e = ast.Unparen(v.X)
		case *ast.SelectorExpr:
			e = ast.Unparen(v.X)
		case *ast.StarExpr:
			if obj := rootVar(pass, v.X); obj != nil && captured(obj, lit) {
				pass.Reportf(lhs.Pos(),
					"parallel callback writes through captured pointer %s: shared state races across workers",
					obj.Name())
			}
			return
		default:
			return
		}
		// Reaching here means we stripped a selector or a non-disjoint
		// index; if the chain bottoms out in a captured variable the
		// write is shared.
		if id, ok := e.(*ast.Ident); ok {
			obj, okVar := varOf(pass, id)
			if okVar && captured(obj, lit) {
				pass.Reportf(lhs.Pos(),
					"parallel callback writes captured %s through a non-disjoint access; index by the callback's own i (or guard with a mutex and a justified //lint:allow)",
					obj.Name())
			}
			return
		}
	}
}

// indexIsDisjoint reports whether the index expression references at
// least one closure-local variable or per-iteration loop variable.
func indexIsDisjoint(pass *analysis.Pass, idx ast.Expr, lit *ast.FuncLit, loopVars map[*types.Var]bool) bool {
	ok := false
	ast.Inspect(idx, func(n ast.Node) bool {
		id, isID := n.(*ast.Ident)
		if !isID || ok {
			return !ok
		}
		if v, isVar := varOf(pass, id); isVar {
			if !captured(v, lit) || loopVars[v] {
				ok = true
			}
		}
		return true
	})
	return ok
}

func varOf(pass *analysis.Pass, id *ast.Ident) (*types.Var, bool) {
	if v, ok := pass.Info.Uses[id].(*types.Var); ok {
		return v, !v.IsField()
	}
	if v, ok := pass.Info.Defs[id].(*types.Var); ok {
		return v, !v.IsField()
	}
	return nil, false
}

// rootVar resolves the leftmost variable of an expression chain.
func rootVar(pass *analysis.Pass, e ast.Expr) *types.Var {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj, ok := varOf(pass, v)
			if !ok {
				return nil
			}
			return obj
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// captured reports whether the variable is declared outside the closure
// (including package-level shared state).
func captured(v *types.Var, lit *ast.FuncLit) bool {
	return v.Pos() < lit.Pos() || v.Pos() >= lit.End()
}
