// Package capacity implements Step 3 of the cISP design (§3.3): routing the
// scaled traffic matrix over the designed hybrid topology, sizing each
// microwave link in parallel tower series using the paper's k² bandwidth
// rule (k series of towers ≈ k² Gbps), and accounting for the additional
// towers each over-utilised hop needs — reusing spare existing towers where
// the registry has them, building new ones otherwise, exactly the
// conservative accounting the paper uses for Figs 3, 4c and 9.
package capacity

import (
	"math"
	"sort"

	"cisp/internal/design"
	"cisp/internal/linkbuild"
	"cisp/internal/traffic"
	"cisp/internal/units"
)

// Options tunes provisioning.
type Options struct {
	// SeriesCap is the bandwidth of a single microwave series (§2:
	// "a data rate of about 1 Gbps is achievable"). Default units.Gbps(1).
	SeriesCap units.BitsPerSecond

	// SpareTolerance is how far from a hop endpoint an existing spare tower
	// may sit and still host a parallel series (§3.3: a 10.6 km offset costs
	// ~0.2% stretch). Default 15 km.
	SpareTolerance units.Meters

	// K2Trick enables the paper's k² enhancement (k series ≈ k² capacity via
	// cross-connected antennae at ≥6° separation). Disabling it reverts to
	// k series ≈ k capacity, for the ablation benchmark. Default on.
	NoK2 bool
}

func (o *Options) setDefaults() {
	if o.SeriesCap == 0 {
		o.SeriesCap = units.Gbps(1)
	}
	if o.SpareTolerance == 0 {
		o.SpareTolerance = units.Km(15).Meters()
	}
}

// Plan is a provisioned network: per-link loads and series, the hop
// augmentation histogram of Fig 3, and the tower/install counts that feed
// the cost model.
type Plan struct {
	// LinkLoads maps built link {i,j} (i<j) to carried load.
	LinkLoads map[[2]int]units.BitsPerSecond

	// Series maps built link {i,j} to the number of parallel tower series.
	Series map[[2]int]int

	// HopHistogram counts tower-tower hops by the number of additional
	// towers needed at each end (0 = existing towers suffice; Fig 3's
	// 1,660 / 552 / 86 split).
	HopHistogram map[int]int

	HopInstalls int // radio installs: one per hop per series
	NewTowers   int // towers that must be constructed
	TowersUsed  int // towers rented in total (base + parallel series)

	// FiberFallback is demand routed entirely over fiber.
	FiberFallback units.BitsPerSecond
}

// Provision routes demand (Gbps, symmetric) over the designed topology and
// sizes every microwave link. Demand between pairs whose shortest hybrid
// path uses no microwave link contributes to FiberFallbackGbps only.
func Provision(top *design.Topology, links *linkbuild.Links, demand traffic.Matrix, opt Options) *Plan {
	opt.setDefaults()
	p := top.P
	n := p.N

	// Site-level routing graph with labelled edges: -1 = fiber, else index
	// into top.Built.
	adj := make([][]arc, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && !math.IsInf(top.FiberDist(i, j), 1) {
				adj[i] = append(adj[i], arc{to: j, w: top.FiberDist(i, j), link: -1})
			}
		}
	}
	for li, l := range top.Built {
		adj[l.I] = append(adj[l.I], arc{to: l.J, w: l.Dist, link: li})
		adj[l.J] = append(adj[l.J], arc{to: l.I, w: l.Dist, link: li})
	}

	plan := &Plan{
		LinkLoads:    make(map[[2]int]units.BitsPerSecond),
		Series:       make(map[[2]int]int),
		HopHistogram: make(map[int]int),
	}

	// Route every commodity along its shortest path, attributing load.
	for s := 0; s < n; s++ {
		dist, prevArc := dijkstraArcs(adj, s)
		for t := s + 1; t < n; t++ {
			g := demand[s][t]
			if g <= 0 || math.IsInf(dist[t], 1) {
				continue
			}
			usedMW := false
			for v := t; v != s; {
				a := prevArc[v]
				if a.link >= 0 {
					l := top.Built[a.link]
					key := linkKey(l.I, l.J)
					plan.LinkLoads[key] += units.Gbps(g)
					usedMW = true
				}
				v = a.from
			}
			if !usedMW {
				plan.FiberFallback += units.Gbps(g)
			}
		}
	}

	// Size links and augment hops. Sort keys for determinism.
	keys := make([][2]int, 0, len(top.Built))
	for _, l := range top.Built {
		keys = append(keys, linkKey(l.I, l.J))
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a][0] != keys[b][0] {
			return keys[a][0] < keys[b][0]
		}
		return keys[a][1] < keys[b][1]
	})

	baseTowers := make(map[int]bool) // towers on first series (already budgeted)
	spareUsed := make(map[int]bool)  // registry towers consumed as parallels
	for _, key := range keys {
		load := plan.LinkLoads[key]
		k := seriesFor(load, opt)
		plan.Series[key] = k

		towerPath := links.TowerPath(key[0], key[1])
		for _, tw := range towerPath {
			baseTowers[tw] = true
		}
		hops := links.Hops(key[0], key[1])
		for _, h := range hops {
			plan.HopInstalls += k
			if k == 1 {
				plan.HopHistogram[0]++
				continue
			}
			extra := k - 1
			spares := sparePairsNear(links, h, opt.SpareTolerance, extra, baseTowers, spareUsed)
			newPerEnd := extra - spares
			plan.HopHistogram[newPerEnd]++
			plan.NewTowers += 2 * newPerEnd
			plan.TowersUsed += 2 * extra // parallel towers rented either way
		}
	}
	plan.TowersUsed += len(baseTowers)
	return plan
}

// seriesFor applies the paper's sizing rule: with the k² trick, k parallel
// series of towers provide k² Gbps, so k = ceil(sqrt(load)); without it,
// k = ceil(load).
func seriesFor(load units.BitsPerSecond, opt Options) int {
	if load <= opt.SeriesCap {
		return 1
	}
	caps := float64(load) / float64(opt.SeriesCap)
	if opt.NoK2 {
		return int(math.Ceil(caps))
	}
	return int(math.Ceil(math.Sqrt(caps)))
}

// sparePairsNear counts how many parallel series (up to want) can be hosted
// on spare existing towers near both endpoints of the hop, consuming them.
func sparePairsNear(links *linkbuild.Links, hop [2]int, tol units.Meters, want int, base, used map[int]bool) int {
	reg := links.Reg
	available := func(end int) []int {
		var out []int
		for _, id := range reg.WithinRange(reg.Tower(end).Loc, tol) {
			if id != hop[0] && id != hop[1] && !base[id] && !used[id] {
				out = append(out, id)
			}
		}
		return out
	}
	a := available(hop[0])
	b := available(hop[1])
	pairs := len(a)
	if len(b) < pairs {
		pairs = len(b)
	}
	if pairs > want {
		pairs = want
	}
	for k := 0; k < pairs; k++ {
		used[a[k]] = true
		used[b[k]] = true
	}
	return pairs
}

func linkKey(i, j int) [2]int {
	if i > j {
		i, j = j, i
	}
	return [2]int{i, j}
}

// arc is a labelled edge of the site-level routing graph: link -1 is fiber,
// otherwise an index into the topology's built microwave links.
type arc struct {
	to   int
	w    float64
	link int
}

// inArc records how a node was reached in dijkstraArcs.
type inArc struct {
	from int
	link int
}

// dijkstraArcs is a small labelled-arc Dijkstra for the site-level routing
// graph (n ≈ 130, dense), recording the incoming arc of each node.
func dijkstraArcs(adj [][]arc, src int) ([]float64, []inArc) {
	n := len(adj)
	dist := make([]float64, n)
	prev := make([]inArc, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = inArc{from: -1, link: -1}
	}
	dist[src] = 0
	for iter := 0; iter < n; iter++ {
		u, best := -1, math.Inf(1)
		for v := 0; v < n; v++ {
			if !done[v] && dist[v] < best {
				u, best = v, dist[v]
			}
		}
		if u < 0 {
			break
		}
		done[u] = true
		for _, a := range adj[u] {
			if nd := dist[u] + a.w; nd < dist[a.to]-1e-9 {
				dist[a.to] = nd
				prev[a.to] = inArc{from: u, link: a.link}
			} else if nd < dist[a.to]+1e-9 && a.link >= 0 && prev[a.to].link < 0 && !done[a.to] {
				// Tie-break toward microwave links (they exist because the
				// optimizer chose them; the paper routes design traffic on
				// the built links).
				dist[a.to] = nd
				prev[a.to] = inArc{from: u, link: a.link}
			}
		}
	}
	return dist, prev
}
