module cisp

go 1.24
