package netsim

import (
	"math"
	"testing"
)

// failureDiamond is the failure-study fixture: the split diamond with the
// commodity riding only the upper path 0-1-3, so killing link 0-1 (index 0)
// strands every flow unless an update moves them to 0-2-3.
func failureDiamond(count int) *Scenario {
	sc := diamondSplitScenario(1, count)
	sc.Splits[1] = []SplitPath{{Path: []int{0, 1, 3}, Frac: 1}}
	return sc
}

// TestLinkSetDownDropsTraffic: a downed packet-mode link drops queued,
// in-flight and newly arriving packets, and restoring it resumes delivery.
func TestLinkSetDownDropsTraffic(t *testing.T) {
	var sim Simulator
	nw := NewNetwork(&sim, 2)
	l := nw.AddLink(0, 1, 1e6, 0.01, 0)
	nw.SetFlowPath(7, []int{0, 1})
	delivered := 0
	nw.OnDeliver(7, func(*Packet) { delivered++ })
	send := func() {
		p := nw.newPacket()
		p.Flow, p.Seq, p.Kind, p.Size = 7, 1, Data, 1000
		p.Src, p.Dst = 0, 1
		nw.Inject(p)
	}
	// Queue a burst, then kill the link before the first transmission (8 ms)
	// finishes: everything must be lost.
	sim.Schedule(0, func() {
		for i := 0; i < 5; i++ {
			send()
		}
	})
	sim.Schedule(0.004, func() { l.SetDown(true) })
	sim.Run(1)
	if delivered != 0 {
		t.Fatalf("delivered %d packets across a downed link", delivered)
	}
	if l.Drops != 5 {
		t.Errorf("Drops = %d, want 5 (4 queued + 1 in flight)", l.Drops)
	}
	// While down, new arrivals are dropped immediately.
	send()
	sim.Run(2)
	if delivered != 0 || l.Drops != 6 {
		t.Fatalf("down link: delivered=%d drops=%d, want 0/6", delivered, l.Drops)
	}
	// Restore: traffic flows again.
	l.SetDown(false)
	send()
	sim.Run(3)
	if delivered != 1 {
		t.Fatalf("restored link delivered %d packets, want 1", delivered)
	}
}

// TestScenarioFailureStrandsFlows: with no protection, killing the only
// path mid-run strands incomplete flows in both engine modes, and
// restoring the link late lets stragglers finish.
func TestScenarioFailureStrandsFlows(t *testing.T) {
	for _, mode := range []Mode{PacketMode, FluidMode} {
		sc := failureDiamond(20)
		sc.StartSpread = 20
		// One second of horizon past the restore: the ~1.5 s of total uptime
		// cannot serve all twenty 1 MiB flows over a 40 Mbps path.
		sc.Horizon = 26
		sc.Failures = []FailureEvent{
			{Time: 0.5, Link: 0, Up: false},
			{Time: 25, Link: 0, Up: true},
		}
		res := sc.Run(mode)
		if res.Completed == len(res.Flows) {
			t.Fatalf("%s: all %d flows completed despite a 24.5 s outage", mode, res.Completed)
		}
		// The restore must let the stranded flows finish given enough time.
		sc2 := failureDiamond(20)
		sc2.StartSpread = 20
		sc2.Horizon = 120
		sc2.Failures = []FailureEvent{
			{Time: 0.5, Link: 0, Up: false},
			{Time: 25, Link: 0, Up: true},
		}
		res2 := sc2.Run(mode)
		if res2.Completed != len(res2.Flows) {
			t.Errorf("%s: only %d/%d flows completed after the link was restored",
				mode, res2.Completed, len(res2.Flows))
		}
	}
}

// TestScenarioUpdateReroutesFlows: a fast-reroute style update right after
// the failure moves the commodity onto the surviving path; every flow
// completes in both modes and the backup path carries the traffic.
func TestScenarioUpdateReroutesFlows(t *testing.T) {
	for _, mode := range []Mode{PacketMode, FluidMode} {
		sc := failureDiamond(20)
		sc.StartSpread = 20
		sc.Horizon = 60
		sc.Failures = []FailureEvent{{Time: 5, Link: 0, Up: false}}
		sc.Updates = []PathUpdate{
			{Time: 5.05, Flow: 1, Paths: []SplitPath{{Path: []int{0, 2, 3}, Frac: 1}}},
		}
		res := sc.Run(mode)
		if res.Completed != len(res.Flows) {
			t.Fatalf("%s: %d/%d flows completed with FRR update installed",
				mode, res.Completed, len(res.Flows))
		}
		var backup float64
		for _, l := range res.LinkLoads {
			if l.From == 0 && l.To == 2 {
				backup = float64(l.Utilization)
			}
		}
		if backup <= 0 {
			t.Errorf("%s: backup path 0-2 carried no traffic after the update", mode)
		}
	}
}

// TestPacketFluidAgreementUnderFRR is the cross-engine bound under failure:
// with a mid-run outage bridged by a fast-reroute update, packet and fluid
// per-commodity mean rates must agree within the established tolerance.
func TestPacketFluidAgreementUnderFRR(t *testing.T) {
	build := func() *Scenario {
		sc := failureDiamond(8)
		sc.StartSpread = 0
		sc.Horizon = 120
		sc.Failures = []FailureEvent{
			{Time: 0.8, Link: 0, Up: false},
			{Time: 30, Link: 0, Up: true},
		}
		sc.Updates = []PathUpdate{
			{Time: 0.85, Flow: 1, Paths: []SplitPath{{Path: []int{0, 2, 3}, Frac: 1}}},
		}
		return sc
	}
	pkt := build().Run(PacketMode)
	fl := build().Run(FluidMode)
	if pkt.Completed != len(pkt.Flows) || fl.Completed != len(fl.Flows) {
		t.Fatalf("incomplete runs: packet %d/%d fluid %d/%d",
			pkt.Completed, len(pkt.Flows), fl.Completed, len(fl.Flows))
	}
	p, f := pkt.MeanRateByCommodity()[1], fl.MeanRateByCommodity()[1]
	if p <= 0 || f <= 0 {
		t.Fatalf("non-positive rates packet=%v fluid=%v", p, f)
	}
	if d := math.Abs(p-f) / f; d > packetFluidAgreementTol {
		t.Errorf("FRR: packet %.0f bps vs fluid %.0f bps — %.0f%% apart (tolerance %.0f%%)",
			p, f, d*100, packetFluidAgreementTol*100)
	}
}

// TestFluidRerouteCarriesRemainingBytes: a mid-run Reroute must preserve
// transfer progress — the flow departs when the new route has served only
// the remaining payload, and ServedBytes stays monotone across the move.
func TestFluidRerouteCarriesRemainingBytes(t *testing.T) {
	links := []TopoLink{
		{A: 0, B: 1, RateBps: 8e6, PropDelay: 0.001},
		{A: 0, B: 2, RateBps: 8e6, PropDelay: 0.001},
		{A: 1, B: 3, RateBps: 8e6, PropDelay: 0.001},
		{A: 2, B: 3, RateBps: 8e6, PropDelay: 0.001},
	}
	f := NewFluid(4, links)
	up := f.AddRoute([]int{0, 1, 3})
	down := f.AddRoute([]int{0, 2, 3})
	// 4 MiB at 8 Mbps: ~4.19 s of total service time.
	id := f.Start(up, 4<<20)
	f.Run(1) // 1 MB served
	served := f.ServedBytes(id)
	const mb = float64(1 << 20)
	if served <= 0.9*mb || served >= 1.1*mb {
		t.Fatalf("served %.0f bytes after 1 s, want ~1 MB", served)
	}
	f.Reroute(id, down)
	f.Recompute()
	if got := f.ServedBytes(id); math.Abs(got-served) > 1 {
		t.Fatalf("ServedBytes jumped across Reroute: %.0f -> %.0f", served, got)
	}
	f.Run(10)
	fct, done := f.FCT(id)
	if !done {
		t.Fatal("flow never completed after reroute")
	}
	// 4 MiB at 8 Mbps is 4.19 s of service regardless of the move.
	want := 4 * mb * 8 / 8e6
	if math.Abs(fct-want) > 0.05 {
		t.Errorf("FCT = %.3f s, want ~%.3f s (progress lost or double-counted)", fct, want)
	}
	// Utilization attribution: the ~1 MB served before the move belongs to
	// the 0-1-3 links, the remaining ~3.2 MB to 0-2-3.
	util := map[[2]int]float64{}
	for _, l := range f.LinkUtilizations() {
		util[[2]int{l.From, l.To}] = float64(l.Utilization)
	}
	oldWant := served * 8 / (8e6 * f.Now())
	newWant := (4*mb - served) * 8 / (8e6 * f.Now())
	for _, hop := range [][2]int{{0, 1}, {1, 3}} {
		if got := util[hop]; math.Abs(got-oldWant) > 0.01 {
			t.Errorf("link %v utilization %.4f, want %.4f (pre-move bytes lost)", hop, got, oldWant)
		}
	}
	for _, hop := range [][2]int{{0, 2}, {2, 3}} {
		if got := util[hop]; math.Abs(got-newWant) > 0.01 {
			t.Errorf("link %v utilization %.4f, want %.4f (post-move bytes misattributed)", hop, got, newWant)
		}
	}
}

// TestFluidRerouteOfPendingAndCompletedFlows: rerouting a flow that has not
// yet arrived moves its admission; rerouting a completed flow is a no-op.
func TestFluidRerouteOfPendingAndCompletedFlows(t *testing.T) {
	links := []TopoLink{
		{A: 0, B: 1, RateBps: 8e6, PropDelay: 0.001},
		{A: 0, B: 2, RateBps: 8e6, PropDelay: 0.001},
	}
	f := NewFluid(3, links)
	r1 := f.AddRoute([]int{0, 1})
	r2 := f.AddRoute([]int{0, 2})
	early := f.Start(r1, 1<<20)
	late := f.StartAt(r1, 1<<20, 5)
	f.Run(2) // early done (~1 s), late still pending
	if _, done := f.FCT(early); !done {
		t.Fatal("early flow incomplete after 2 s")
	}
	f.Reroute(early, r2) // completed: no-op
	f.Reroute(late, r2)  // pending: admission moves to r2
	f.Recompute()
	f.Run(20)
	if _, done := f.FCT(late); !done {
		t.Fatal("late flow incomplete")
	}
	if f.RouteRate(r1) != 0 {
		t.Errorf("route r1 still has rate %v after its only pending flow moved", f.RouteRate(r1))
	}
	loads := f.LinkUtilizations()
	if loads[2].Utilization <= 0 { // 0->2 is the third directed link
		t.Errorf("rerouted pending flow left link 0->2 idle: %+v", loads)
	}
}

// TestScenarioFailureDeterminism: failure + update schedules preserve the
// engines' bit-identical determinism in the Seed.
func TestScenarioFailureDeterminism(t *testing.T) {
	build := func() *Scenario {
		sc := failureDiamond(30)
		sc.StartSpread = 10
		sc.Horizon = 60
		sc.Failures = []FailureEvent{
			{Time: 2, Link: 0, Up: false},
			{Time: 20, Link: 0, Up: true},
		}
		sc.Updates = []PathUpdate{
			{Time: 2.05, Flow: 1, Paths: []SplitPath{
				{Path: []int{0, 2, 3}, Frac: 0.8},
				{Path: []int{0, 1, 3}, Frac: 0.2},
			}},
		}
		return sc
	}
	for _, mode := range []Mode{PacketMode, FluidMode} {
		a, b := build().Run(mode), build().Run(mode)
		if len(a.Flows) != len(b.Flows) {
			t.Fatalf("%s: flow counts differ", mode)
		}
		for i := range a.Flows {
			if a.Flows[i] != b.Flows[i] {
				t.Fatalf("%s: flow %d differs: %+v vs %+v", mode, i, a.Flows[i], b.Flows[i])
			}
		}
		for i := range a.LinkLoads {
			if a.LinkLoads[i] != b.LinkLoads[i] {
				t.Fatalf("%s: link load %d differs", mode, i)
			}
		}
	}
}
