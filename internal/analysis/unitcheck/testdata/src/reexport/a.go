// Package reexport pins that unitcheck sees through vendored-style type
// re-exports: the unit types arrive via reexportlib's aliases, two imports
// away from the defining package.
package reexport

import lib "cisp/internal/analysis/unitcheck/testdata/src/reexportlib"

func f(km lib.Km) lib.Meters {
	return lib.Meters(km) // want `drops the scale factor`
}
