// Command cispd runs the cISP control-plane daemon: it owns a hybrid
// microwave/fiber backbone for its lifetime, ingests weather-grading and
// hard-failure events — a seeded replay stream, the HTTP injection
// endpoint, or both — drives warm TE reoptimization and fast-reroute
// activation, and serves versioned forwarding snapshots over HTTP/JSON.
//
//	cispd -addr :8080 -sites 12
//	curl -s localhost:8080/v1/snapshot | jq .version
//	curl -s -XPOST localhost:8080/v1/events \
//	     -d '{"events":[{"type":"fade","link":0,"capfrac":0.5}]}'
//	curl -s localhost:8080/metrics | grep cisp_ctlplane
//
// SIGHUP rebuilds the control plane in place (epoch bump, serving never
// pauses); SIGINT/SIGTERM drain gracefully: readiness drops, in-flight
// requests finish, then the event loop exits. See DESIGN.md §13.
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"cisp/internal/cities"
	"cisp/internal/ctlplane"
	"cisp/internal/obs"
	"cisp/internal/resilience"
	"cisp/internal/te"
)

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address for snapshots, event injection, /metrics, /healthz, /readyz")
	sites := flag.Int("sites", 12, "population centers (largest first from the paper's coalesced US set)")
	nearestK := flag.Int("k", 2, "microwave links per site to its nearest neighbors")
	mwGbps := flag.Float64("mw-gbps", 10, "clear-sky microwave link capacity")
	fiberGbps := flag.Float64("fiber-gbps", 40, "fiber conduit capacity")
	aggGbps := flag.Float64("agg-gbps", 50, "aggregate offered demand across the gravity-model commodities")
	seed := flag.Int64("seed", 1, "seed for the replay stream's weather and failure draws")
	replay := flag.Int("replay", 0, "inject up to this many events from the seeded stream (0 = serve injections only)")
	streamHours := flag.Float64("stream-hours", 24, "modeled horizon of the replay stream")
	pace := flag.Float64("pace", 0, "replay pacing: modeled seconds per wall second (0 = inject as fast as the control plane accepts)")
	flag.Parse()

	cs := cities.USCenters()
	sort.SliceStable(cs, func(i, j int) bool { return cs[i].Population > cs[j].Population })
	if *sites < 2 || *sites > len(cs) {
		log.Fatalf("cispd: -sites %d outside [2,%d]", *sites, len(cs))
	}
	backbone := ctlplane.SyntheticBackbone(cs[:*sites], *nearestK, *mwGbps, *fiberGbps)
	comms := ctlplane.GravityCommodities(backbone.Sites, *aggGbps)

	sink := &obs.Sink{Reg: obs.NewRegistry(), Clock: obs.WallClock}
	obs.SetActive(sink)

	d, err := ctlplane.New(ctlplane.Config{
		Backbone: backbone,
		Comms:    comms,
		TE:       te.Config{},
		Prot:     resilience.Config{},
		Clock:    obs.WallClock,
		OnPublish: func(s *ctlplane.Snapshot) {
			log.Printf("cispd: published v%d e%d %s mlu=%.3f down=%v", s.Version, s.Epoch, s.Kind, s.MLU, s.DownLinks)
		},
	})
	if err != nil {
		log.Fatalf("cispd: %v", err)
	}
	srv, err := d.Serve(*addr, sink)
	if err != nil {
		log.Fatalf("cispd: %v", err)
	}
	log.Printf("cispd: serving %d sites, %d links (%d microwave), %d commodities on http://%s",
		len(backbone.Sites), d.NumLinks(), d.NumMw(), len(comms), srv.Addr())

	if *replay > 0 {
		go replayStream(d, backbone, ctlplane.StreamConfig{Seed: *seed, Horizon: *streamHours * 3600}, *replay, *pace)
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGHUP, syscall.SIGINT, syscall.SIGTERM)
	for sig := range sigs {
		if sig == syscall.SIGHUP {
			if snap, err := d.Reload(te.Config{}, resilience.Config{}); err != nil {
				log.Printf("cispd: reload failed: %v", err)
			} else {
				log.Printf("cispd: reloaded, epoch %d", snap.Epoch)
			}
			continue
		}
		log.Printf("cispd: %v received, draining", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		err := srv.Shutdown(ctx)
		cancel()
		if err != nil {
			log.Printf("cispd: drain: %v", err)
			os.Exit(1)
		}
		log.Printf("cispd: drained cleanly at version %d", d.Snapshot().Version)
		return
	}
}

// replayStream feeds the seeded event timeline into the daemon, paced by
// modeled time when pace > 0. Injection errors during drain are expected
// and end the replay quietly.
func replayStream(d *ctlplane.Daemon, b *ctlplane.Backbone, cfg ctlplane.StreamConfig, limit int, pace float64) {
	evs := ctlplane.DrawStream(b, cfg)
	if len(evs) > limit {
		evs = evs[:limit]
	}
	log.Printf("cispd: replaying %d events over %.1f modeled hours", len(evs), cfg.Horizon/3600)
	prev := 0.0
	for _, tev := range evs {
		if pace > 0 {
			time.Sleep(time.Duration((tev.At - prev) / pace * float64(time.Second)))
			prev = tev.At
		}
		if _, err := d.Apply([]ctlplane.Event{tev.Ev}); err != nil {
			if d.Draining() {
				return
			}
			log.Printf("cispd: replay inject: %v", err)
			return
		}
	}
	log.Printf("cispd: replay complete at version %d", d.Snapshot().Version)
}
