// Package econ implements the paper's §8 cost–benefit analysis: lower-bound
// estimates of cISP's value per gigabyte for Web search, e-commerce and
// online gaming, compared against the network's ~$0.81/GB amortised cost.
// All constants are the paper's cited figures; each function documents the
// arithmetic so the published numbers are regenerated exactly.
package econ

// ValuePerGB is a value estimate range in dollars per gigabyte.
type ValuePerGB struct {
	Low, High float64
}

// secondsPerYear for traffic-volume arithmetic.
const secondsPerYear = 365 * 24 * 3600.0

// WebSearchValue reproduces the paper's search estimate: speeding up page
// loads for searchTrafficGbps of US search traffic by speedupMs yields
// additional yearly profit of ~$87M at 200 ms (~$177M at 400 ms), i.e.
// $1.84 ($3.74) per GB of search traffic carried.
//
// The profit model is linear in the speedup, interpolated through the
// paper's two published points (Google's 0.7%-fewer-searches-per-400ms
// observation combined with US revenue and cost-per-search estimates).
func WebSearchValue(speedupMs, searchTrafficGbps float64) ValuePerGB {
	// $87M/year at 200 ms → $0.4425M per ms (the 400 ms point gives $177M,
	// confirming near-linearity).
	profitPerYear := 0.4425e6 * speedupMs
	gbPerYear := searchTrafficGbps / 8 * secondsPerYear
	v := profitPerYear / gbPerYear
	return ValuePerGB{Low: v, High: v}
}

// PaperWebSearch returns the paper's two quoted search data points.
func PaperWebSearch() (at200, at400 ValuePerGB) {
	return WebSearchValue(200, 12), WebSearchValue(400, 12)
}

// ECommerceValue reproduces the paper's Amazon estimate. Inputs from §8:
// ~483 PB/year of site traffic, ~$7.9B/year North-America profit, and a
// conversion-rate sensitivity of 1% to 7% additional profit per 100 ms of
// speedup. Sending only the latency-sensitive fraction of bytes over cISP
// (the paper's ~10% from the selective Web study) divides the carried bytes.
func ECommerceValue(speedupMs, trafficPBPerYear, profitPerYear, bytesFraction float64) ValuePerGB {
	carriedGB := trafficPBPerYear * 1e6 * bytesFraction
	lo := profitPerYear * 0.01 * (speedupMs / 100)
	hi := profitPerYear * 0.07 * (speedupMs / 100)
	return ValuePerGB{Low: lo / carriedGB, High: hi / carriedGB}
}

// PaperECommerce returns the paper's quoted range: $3.26–$22.82 per GB for a
// 200 ms speedup carrying <10% of bytes.
func PaperECommerce() ValuePerGB {
	return ECommerceValue(200, 483, 7.9e9, 0.10)
}

// GamingValue reproduces the paper's accelerated-VPN comparison: gamers pay
// vpnPerMonth for lower latency; at rateKbps for hoursPerDay of play the
// carried volume prices the service per GB.
func GamingValue(vpnPerMonth, rateKbps, hoursPerDay float64) ValuePerGB {
	gbPerMonth := rateKbps * 1000 / 8 * hoursPerDay * 3600 * 30 / 1e9
	v := vpnPerMonth / gbPerMonth
	return ValuePerGB{Low: v, High: v}
}

// PaperGaming returns the paper's quoted point: a $4/month VPN at 10 Kbps,
// 8 h/day → at least $3.7/GB.
func PaperGaming() ValuePerGB {
	return GamingValue(4, 10, 8)
}

// GamingAggregateGbps reproduces §6.6's Steam arithmetic: players × share ×
// per-player rate, e.g. 16M players × 17% US × 10 Kbps ≈ 27 Gbps — enough
// demand to justify a cISP on its own.
func GamingAggregateGbps(players float64, usShare float64, rateKbps float64) float64 {
	return players * usShare * rateKbps * 1000 / 1e9
}

// Exceeds reports whether every value estimate beats the given network cost
// per GB — the paper's bottom line ($0.81/GB).
func Exceeds(costPerGB float64, estimates ...ValuePerGB) bool {
	for _, e := range estimates {
		if e.Low <= costPerGB {
			return false
		}
	}
	return true
}
