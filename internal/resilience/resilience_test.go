package resilience

import (
	"math"
	"testing"

	"cisp/internal/netsim"
	"cisp/internal/te"
	"cisp/internal/weather"
)

// TestDrawScheduleDeterministicAndStable: same seed, same schedule; and an
// element's timeline must not shift when unrelated elements are appended.
func TestDrawScheduleDeterministicAndStable(t *testing.T) {
	els := LinkElements(4, 3600, 300)
	a := DrawSchedule(els, 4, 86400, 7)
	b := DrawSchedule(els, 4, 86400, 7)
	if len(a.Outages) == 0 {
		t.Fatal("no outages drawn in a day at MTBF 1h")
	}
	if len(a.Outages) != len(b.Outages) {
		t.Fatalf("outage counts differ: %d vs %d", len(a.Outages), len(b.Outages))
	}
	for i := range a.Outages {
		if a.Outages[i] != b.Outages[i] {
			t.Fatalf("outage %d differs: %+v vs %+v", i, a.Outages[i], b.Outages[i])
		}
	}
	// Appending a new element must not perturb the existing links' draws.
	more := append(append([]Element(nil), els...), Element{Name: "x", Links: []int{3}, MTBF: 60, MTTR: 60})
	c := DrawSchedule(more, 4, 86400, 7)
	for _, link := range []int{0, 1, 2} {
		var av, cv []Outage
		for _, o := range a.Outages {
			if o.Link == link {
				av = append(av, o)
			}
		}
		for _, o := range c.Outages {
			if o.Link == link {
				cv = append(cv, o)
			}
		}
		if len(av) != len(cv) {
			t.Fatalf("link %d outages changed when another element was added", link)
		}
		for i := range av {
			if av[i] != cv[i] {
				t.Fatalf("link %d outage %d shifted: %+v vs %+v", link, i, av[i], cv[i])
			}
		}
	}
	// Outages stay inside the horizon and per-link intervals do not overlap.
	last := map[int]float64{}
	for _, o := range a.Outages {
		if o.Start < 0 || o.End > a.Horizon || o.End <= o.Start {
			t.Fatalf("malformed outage %+v", o)
		}
		if o.Start <= last[o.Link] && last[o.Link] != 0 {
			t.Fatalf("link %d outages overlap at %v", o.Link, o.Start)
		}
		last[o.Link] = o.End
	}
}

// TestScheduleEventsRoundTrip: Events must alternate down/up per link and
// reproduce DownAt.
func TestScheduleEventsRoundTrip(t *testing.T) {
	s := DrawSchedule(LinkElements(3, 1800, 600), 3, 43200, 11)
	evs := s.Events()
	down := make([]bool, 3)
	for i, ev := range evs {
		if i > 0 && evs[i-1].Time > ev.Time {
			t.Fatal("events not time-sorted")
		}
		if down[ev.Link] == !ev.Up {
			t.Fatalf("event %d repeats state for link %d", i, ev.Link)
		}
		down[ev.Link] = !ev.Up
		// Probe just after the event.
		probe := s.DownAt(ev.Time + 1e-9)
		for li := range down {
			if probe[li] != down[li] {
				t.Fatalf("DownAt disagrees with event replay at t=%v link %d", ev.Time, li)
			}
		}
	}
}

// TestMergeAndWeatherSchedule: a weather interval schedule composes with a
// hardware schedule as a union of down time.
func TestMergeAndWeatherSchedule(t *testing.T) {
	// Two intervals of 100 s: link 0 fails in the second.
	conds := [][]weather.LinkCondition{
		{{CapFrac: 1}, {CapFrac: 1}},
		{{Failed: true}, {CapFrac: 0.5}},
	}
	ws := WeatherSchedule(conds, 100, 3)
	if ws.Horizon != 200 || len(ws.Outages) != 1 {
		t.Fatalf("weather schedule: horizon %v outages %v", ws.Horizon, ws.Outages)
	}
	if o := ws.Outages[0]; o.Link != 0 || o.Start != 100 || o.End != 200 {
		t.Fatalf("wrong weather outage %+v", o)
	}
	hw := &Schedule{Horizon: 200, NumLinks: 3, Outages: []Outage{{Link: 0, Start: 50, End: 120}, {Link: 2, Start: 10, End: 20}}}
	m, err := Merge(hw, ws)
	if err != nil {
		t.Fatal(err)
	}
	downSec := m.DownSeconds()
	if math.Abs(downSec[0]-150) > 1e-9 { // [50,120) ∪ [100,200) = [50,200)
		t.Fatalf("merged link 0 downtime %v, want 150", downSec[0])
	}
	if downSec[2] != 10 || downSec[1] != 0 {
		t.Fatalf("merged downtime %v", downSec)
	}
	if _, err := Merge(hw, &Schedule{NumLinks: 2}); err == nil {
		t.Fatal("no error merging schedules over different link counts")
	}
}

// TestTowerAndCityElements: tower-weighted MTBF must scale with estimated
// relay count, and city elements must cover exactly the incident links.
func TestTowerAndCityElements(t *testing.T) {
	links := []netsim.TopoLink{
		{A: 0, B: 1, PropDelay: 100e3 / 299792458.0}, // ~100 km: 1 tower hop
		{A: 1, B: 2, PropDelay: 500e3 / 299792458.0}, // ~500 km: 5 hops
		{A: 0, B: 2, PropDelay: 250e3 / 299792458.0},
	}
	els := TowerElements(links, 100e3, 1000, 10)
	if els[0].MTBF != 1000 {
		t.Errorf("1-hop link MTBF %v, want 1000", els[0].MTBF)
	}
	if els[1].MTBF != 200 {
		t.Errorf("5-hop link MTBF %v, want 200", els[1].MTBF)
	}
	city := CityElements(links, []int{1}, 5000, 100)
	if len(city) != 1 {
		t.Fatalf("%d city elements, want 1", len(city))
	}
	if got := city[0].Links; len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("city 1 covers %v, want [0 1]", got)
	}
}

// protDiamond is the protection fixture: a diamond plus a long detour, one
// commodity riding the short arm.
//
//	0 --1ms-- 1 --1ms-- 3      (primary, delay 2 ms)
//	0 --2ms-- 2 --2ms-- 3      (disjoint alternative, delay 4 ms... too long at stretch 1.5)
//	0 --1.4ms-- 4 --1.4ms-- 3  (disjoint alternative, delay 2.8 ms, inside stretch 1.5×2=3)
func protLinks() []netsim.TopoLink {
	return []netsim.TopoLink{
		{A: 0, B: 1, RateBps: 40e6, PropDelay: 0.001},
		{A: 1, B: 3, RateBps: 40e6, PropDelay: 0.001},
		{A: 0, B: 2, RateBps: 40e6, PropDelay: 0.002},
		{A: 2, B: 3, RateBps: 40e6, PropDelay: 0.002},
		{A: 0, B: 4, RateBps: 40e6, PropDelay: 0.0014},
		{A: 4, B: 3, RateBps: 40e6, PropDelay: 0.0014},
	}
}

func protComms() []netsim.Commodity {
	return []netsim.Commodity{{Flow: 1, Src: 0, Dst: 3, Demand: 5e6, Count: 8}}
}

func protPrimaries() map[int][]netsim.SplitPath {
	return map[int][]netsim.SplitPath{1: {{Path: []int{0, 1, 3}, Frac: 1}}}
}

// TestBackupDisjointAndWithinStretch is the satellite guarantee: the chosen
// backup shares no link with the primary when a disjoint candidate exists
// within the stretch cap, never exceeds the cap, and is the best (fewest
// shared links, then lowest delay) of the whole candidate pool.
func TestBackupDisjointAndWithinStretch(t *testing.T) {
	comms := protComms()
	p, err := NewProtection(5, protLinks(), comms, protPrimaries(), Config{K: 8, Stretch: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	bk, ok := p.Backups[1]
	if !ok {
		t.Fatal("no backup for the protected commodity")
	}
	if bk.Shared != 0 {
		t.Fatalf("backup %v shares %d links with the primary; a disjoint path exists", bk.Path, bk.Shared)
	}
	short, _ := p.ShortestDelay(1)
	if bk.Delay > 1.5*short+1e-12 {
		t.Fatalf("backup delay %.4f ms exceeds the stretch cap (%.4f ms)", bk.Delay*1e3, 1.5*short*1e3)
	}
	// The 0-4-3 detour (2.8 ms) is the only disjoint path inside the cap;
	// 0-2-3 at 4 ms is outside 1.5 × 2 ms.
	if len(bk.Path) != 3 || bk.Path[1] != 4 {
		t.Fatalf("backup path %v, want the 0-4-3 detour", bk.Path)
	}

	// Exhaustive check against the pool the backup was chosen from: no
	// non-primary candidate is more disjoint, and none equally disjoint is
	// faster.
	pool, err := te.Candidates(5, protLinks(), comms, te.Config{K: p.cfg.K, Stretch: p.cfg.Stretch})
	if err != nil {
		t.Fatal(err)
	}
	primKey := netsim.PathKey(protPrimaries()[1][0].Path)
	for _, cand := range pool[0] {
		if netsim.PathKey(cand.Nodes) == primKey {
			continue
		}
		shared := 0
		lis, err := p.pathLinks(cand.Nodes)
		if err != nil {
			t.Fatal(err)
		}
		primLinks, err := p.pathLinks(protPrimaries()[1][0].Path)
		if err != nil {
			t.Fatal(err)
		}
		onPrim := map[int]bool{}
		for _, li := range primLinks {
			onPrim[li] = true
		}
		for _, li := range lis {
			if onPrim[li] {
				shared++
			}
		}
		if shared < bk.Shared || (shared == bk.Shared && cand.Delay < bk.Delay-1e-12) {
			t.Fatalf("candidate %v (shared %d, delay %v) beats chosen backup %v (shared %d, delay %v)",
				cand.Nodes, shared, cand.Delay, bk.Path, bk.Shared, bk.Delay)
		}
	}
}

// TestPatchMovesOnlyDeadFractions: patching must leave live fractions in
// place, move dead ones to the backup, and return to primaries on repair.
func TestPatchMovesOnlyDeadFractions(t *testing.T) {
	primaries := map[int][]netsim.SplitPath{1: {
		{Path: []int{0, 1, 3}, Frac: 0.6},
		{Path: []int{0, 4, 3}, Frac: 0.4},
	}}
	p, err := NewProtection(5, protLinks(), protComms(), primaries, Config{K: 8, Stretch: 2.5})
	if err != nil {
		t.Fatal(err)
	}
	down := make([]bool, 6)
	down[0] = true // 0-1 dies: the 0.6 fraction must move
	patched := p.Patched(down)[1]
	total := 0.0
	for _, sp := range patched {
		total += sp.Frac
		if !p.pathUp(sp.Path, down) {
			t.Fatalf("patched split still rides a dead path: %v", sp.Path)
		}
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("patched fractions sum to %v", total)
	}
	// No failure: patch is the identity.
	clear := make([]bool, 6)
	same := p.Patched(clear)[1]
	if splitsKey(same) != splitsKey(primaries[1]) {
		t.Fatalf("clear-sky patch altered the splits: %+v", same)
	}
}

// TestPlanFRRZeroLPSolves pins the headline event-path property: compiling
// an FRR response to a multi-failure schedule performs zero simplex solves,
// and the updates activate backups and revert on repair.
func TestPlanFRRZeroLPSolves(t *testing.T) {
	p, err := NewProtection(5, protLinks(), protComms(), protPrimaries(), Config{K: 8, Stretch: 1.5, DetectDelay: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	sched := &Schedule{Horizon: 100, NumLinks: 6, Outages: []Outage{
		{Link: 0, Start: 10, End: 40},
		{Link: 4, Start: 60, End: 70}, // hits the backup itself while primary is up: no reroute needed
	}}
	plan, err := p.Plan(sched, FRR, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan.LPSolves != 0 {
		t.Fatalf("FRR plan performed %d LP solves on the event path", plan.LPSolves)
	}
	if len(plan.Failures) != 4 {
		t.Fatalf("%d failure events, want 4", len(plan.Failures))
	}
	if len(plan.Updates) != 2 {
		t.Fatalf("updates = %+v, want activate+revert", plan.Updates)
	}
	if got := plan.Updates[0]; got.Time != 10.05 || netsim.PathKey(got.Paths[0].Path) != netsim.PathKey([]int{0, 4, 3}) {
		t.Fatalf("activation update %+v, want backup 0-4-3 at t=10.05", got)
	}
	if got := plan.Updates[1]; got.Time != 40.05 || netsim.PathKey(got.Paths[0].Path) != netsim.PathKey([]int{0, 1, 3}) {
		t.Fatalf("revert update %+v, want primary back at t=40.05", got)
	}
}

// TestAvailabilityOrdering pins the mode hierarchy on a schedule that
// exercises every branch: reopt ≥ frr ≥ none, with strict gaps where the
// fixture guarantees them, and stretch > 1 for rescued traffic.
func TestAvailabilityOrdering(t *testing.T) {
	p, err := NewProtection(5, protLinks(), protComms(), protPrimaries(),
		Config{K: 8, Stretch: 1.5, DetectDelay: 0.05, ReoptDelay: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Primary out 100 s; later both primary and backup out 100 s (only the
	// out-of-cap 0-2-3 detour survives: reopt's residual rescue).
	sched := &Schedule{Horizon: 1000, NumLinks: 6, Outages: []Outage{
		{Link: 0, Start: 100, End: 200},
		{Link: 1, Start: 500, End: 600},
		{Link: 4, Start: 500, End: 600},
	}}
	none := p.Availability(sched, NoProtection)
	frr := p.Availability(sched, FRR)
	reopt := p.Availability(sched, FRRReopt)

	// none: 200 s of the 1000 s horizon dark => 0.8.
	if math.Abs(none.Availability-0.8) > 1e-6 {
		t.Fatalf("no-protection availability %v, want 0.8", none.Availability)
	}
	// frr rescues the first outage (keeps ~0.05 s detection darkness) but
	// not the second.
	if frr.Availability <= none.Availability {
		t.Fatalf("frr %v not above none %v", frr.Availability, none.Availability)
	}
	wantFrr := 1 - (0.05+100)/1000.0
	if math.Abs(frr.Availability-wantFrr) > 1e-4 {
		t.Fatalf("frr availability %v, want ~%v", frr.Availability, wantFrr)
	}
	// reopt rescues both (second after the 1 s reopt delay).
	if reopt.Availability <= frr.Availability {
		t.Fatalf("reopt %v not above frr %v", reopt.Availability, frr.Availability)
	}
	wantReopt := 1 - (0.05+1.0)/1000.0
	if math.Abs(reopt.Availability-wantReopt) > 1e-4 {
		t.Fatalf("reopt availability %v, want ~%v", reopt.Availability, wantReopt)
	}
	// Live rerouted traffic pays latency: the 0-4-3 backup stretches 1.4×,
	// the residual 0-2-3 rescue 2×.
	if frr.MeanStretch <= 1 || frr.MaxStretch < 1.39 || frr.MaxStretch > 1.41 {
		t.Fatalf("frr stretch mean=%v max=%v, want max ~1.4", frr.MeanStretch, frr.MaxStretch)
	}
	if reopt.MaxStretch < 1.99 || reopt.MaxStretch > 2.01 {
		t.Fatalf("reopt max stretch %v, want ~2 (residual detour)", reopt.MaxStretch)
	}
	if none.Reroutes != 0 || frr.Reroutes == 0 {
		t.Fatalf("reroute counts none=%d frr=%d", none.Reroutes, frr.Reroutes)
	}
}

// TestPlanAgreesAcrossEngines is the satellite bound end to end: a
// compiled FRR plan (schedule events + activation updates) installed on
// the same Scenario must complete every flow in both engine modes with
// commodity throughput within the 10% packet/fluid tolerance established
// by the netsim agreement tests (netsim's TestPacketFluidAgreementUnderFRR
// pins the per-flow version of the same bound; here completions stagger in
// packet mode, so the stable cross-engine quantity is total bits over
// makespan).
func TestPlanAgreesAcrossEngines(t *testing.T) {
	p, err := NewProtection(5, protLinks(), protComms(), protPrimaries(),
		Config{K: 8, Stretch: 1.5, DetectDelay: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	sched := &Schedule{Horizon: 60, NumLinks: 6, Outages: []Outage{{Link: 0, Start: 0.8, End: 30}}}
	plan, err := p.Plan(sched, FRR, nil)
	if err != nil {
		t.Fatal(err)
	}
	build := func() *netsim.Scenario {
		return &netsim.Scenario{
			Nodes:     5,
			Links:     protLinks(),
			Comms:     protComms(),
			Splits:    p.Primaries(),
			Failures:  plan.Failures,
			Updates:   plan.Updates,
			FlowBytes: 4 << 20,
			Horizon:   120,
			Seed:      5,
		}
	}
	pkt := build().Run(netsim.PacketMode)
	fl := build().Run(netsim.FluidMode)
	if pkt.Completed != len(pkt.Flows) || fl.Completed != len(fl.Flows) {
		t.Fatalf("incomplete: packet %d/%d fluid %d/%d",
			pkt.Completed, len(pkt.Flows), fl.Completed, len(fl.Flows))
	}
	throughput := func(r *netsim.ScenarioResult) float64 {
		makespan := 0.0
		for _, f := range r.Flows {
			if f.Start+f.FCT > makespan {
				makespan = f.Start + f.FCT
			}
		}
		return float64(len(r.Flows)) * float64(4<<20) * 8 / makespan
	}
	pr, fr := throughput(pkt), throughput(fl)
	if pr <= 0 || fr <= 0 {
		t.Fatalf("non-positive throughput packet=%v fluid=%v", pr, fr)
	}
	if d := math.Abs(pr-fr) / fr; d > 0.10 {
		t.Errorf("plan replay: packet %.0f bps vs fluid %.0f bps — %.0f%% apart (tolerance 10%%)", pr, fr, d*100)
	}
	// The backup detour must actually have carried traffic in both modes.
	for _, res := range []*netsim.ScenarioResult{pkt, fl} {
		used := false
		for _, l := range res.LinkLoads {
			if l.From == 0 && l.To == 4 && l.Utilization > 0 {
				used = true
			}
		}
		if !used {
			t.Errorf("%s: backup 0-4 idle during the outage", res.Mode)
		}
	}
}

func TestScheduleRemap(t *testing.T) {
	s := &Schedule{Horizon: 100, NumLinks: 5, Outages: []Outage{
		{Link: 0, Start: 10, End: 20}, // microwave: dropped by the remap
		{Link: 3, Start: 30, End: 40}, // fiber: index 3-2 = 1
		{Link: 4, Start: 35, End: 50}, // fiber: index 2
	}}
	// Project onto a fiber-only baseline whose links are the suffix [2..5).
	fib := s.Remap(3, func(li int) int { return li - 2 })
	if fib.Horizon != 100 || fib.NumLinks != 3 {
		t.Fatalf("remap shape: %+v", fib)
	}
	if len(fib.Outages) != 2 {
		t.Fatalf("expected 2 surviving outages, got %+v", fib.Outages)
	}
	if fib.Outages[0].Link != 1 || fib.Outages[0].Start != 30 {
		t.Fatalf("first remapped outage wrong: %+v", fib.Outages[0])
	}
	if fib.Outages[1].Link != 2 || fib.Outages[1].End != 50 {
		t.Fatalf("second remapped outage wrong: %+v", fib.Outages[1])
	}
	down := fib.DownAt(36)
	if down[0] || !down[1] || !down[2] {
		t.Fatalf("down-set after remap wrong: %v", down)
	}
}
