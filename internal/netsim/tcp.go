package netsim

import "math"

// TCPConn is a simplified TCP Reno sender/receiver pair for the Fig 6
// speed-mismatch study: slow start, congestion avoidance, fast retransmit
// plus fast recovery on triple duplicate ACKs, retransmission timeouts, and
// optional packet pacing (sends spaced at cwnd per SRTT rather than
// back-to-back on ACK clocking).
//
// The connection transfers FlowSize bytes of payload in MSS-sized segments;
// Done is invoked with the flow completion time once the final segment is
// cumulatively acknowledged.
type TCPConn struct {
	Net      *Network
	Flow     int
	Src, Dst int
	FlowSize int // payload bytes
	MSS      int // payload bytes per segment (default 1460)
	Pacing   bool
	InitRTT  float64 // initial SRTT estimate, seconds (default 50 ms)
	InitCwnd float64 // initial window, packets (default 10)
	Done     func(fct float64)

	// RTOCount counts retransmission-timeout firings (visible to tests and
	// experiments: a healthy fast-recovery path keeps it at zero for
	// isolated losses).
	RTOCount int

	// Sender state (packet sequence numbers are 1-based).
	nPkts      int64
	sndUna     int64 // lowest unacked
	sndNxt     int64 // next sequence to send
	maxSent    int64 // highest sequence ever emitted (Karn marking on re-sends)
	cwnd       float64
	ssthresh   float64
	dupAcks    int
	inRecovery bool // between fast retransmit and the next new ACK
	srtt       float64
	rttvar     float64
	rto        float64
	sentAt     []float64 // indexed by seq; NaN = not outstanding
	retxMark   []bool    // Karn: retransmitted, no RTT sample
	startTime  float64
	finished   bool

	// Retransmission timer: a single outstanding event per connection.
	// ACK processing only moves the deadline; the timer lazily reschedules
	// itself when it fires early, so the event heap holds at most one
	// entry per connection instead of one stale closure per ACK.
	rtoDeadline float64
	rtoArmed    bool

	// Pacing.
	nextPaceAt float64

	// Receiver state.
	rcvNext int64
	rcvBuf  []bool // indexed by seq: received out of order
}

const ackSize = 40 // bytes on the wire for a pure ACK

// minRTO is the retransmission-timer floor (RFC 6298 prescribes 1 s; Linux
// ships 200 ms). Without a floor well above one RTT, the timer fires
// spuriously during fast recovery — exactly the stall-then-collapse the
// recovery path is meant to avoid.
const minRTO = 0.2

// Start opens the connection and begins transmitting at the current
// simulation time. The forward (data) and reverse (ACK) paths must already
// be installed for c.Flow via SetFlowPath.
func (c *TCPConn) Start() {
	if c.MSS == 0 {
		c.MSS = 1460
	}
	if c.InitRTT == 0 {
		c.InitRTT = 0.05
	}
	if c.InitCwnd == 0 {
		c.InitCwnd = 10
	}
	c.nPkts = int64((c.FlowSize + c.MSS - 1) / c.MSS)
	if c.nPkts == 0 {
		c.nPkts = 1
	}
	c.sndUna, c.sndNxt = 1, 1
	c.cwnd = c.InitCwnd
	c.ssthresh = 1e9
	c.srtt = c.InitRTT
	c.rttvar = c.InitRTT / 2
	c.rto = math.Max(c.srtt+4*c.rttvar, minRTO)
	c.sentAt = make([]float64, c.nPkts+1)
	for i := range c.sentAt {
		c.sentAt[i] = math.NaN()
	}
	c.retxMark = make([]bool, c.nPkts+1)
	c.rcvNext = 1
	c.rcvBuf = make([]bool, c.nPkts+2)
	c.startTime = c.Net.Sim.Now()
	c.nextPaceAt = c.startTime

	c.Net.OnDeliver(c.Flow, c.onPacket)
	c.trySend()
	c.armRTO()
}

// onPacket handles both data arriving at the receiver and ACKs arriving back
// at the sender (demuxed by Kind).
func (c *TCPConn) onPacket(p *Packet) {
	if p.Kind == Data {
		c.receiverOnData(p)
	} else {
		c.senderOnAck(p)
	}
}

func (c *TCPConn) receiverOnData(p *Packet) {
	if p.Seq >= c.rcvNext && p.Seq < int64(len(c.rcvBuf)) {
		c.rcvBuf[p.Seq] = true
	}
	for c.rcvNext < int64(len(c.rcvBuf)) && c.rcvBuf[c.rcvNext] {
		c.rcvNext++
	}
	// Cumulative ACK back to the sender.
	ack := c.Net.newPacket()
	ack.Flow, ack.Kind, ack.Size = c.Flow, Ack, ackSize
	ack.Src, ack.Dst, ack.AckNo = c.Dst, c.Src, c.rcvNext
	c.Net.Inject(ack)
}

func (c *TCPConn) senderOnAck(p *Packet) {
	if c.finished {
		return
	}
	if p.AckNo > c.sndUna {
		acked := p.AckNo - c.sndUna
		// RTT sample from the newest cumulatively acked, un-retransmitted
		// segment (Karn's rule).
		if s := p.AckNo - 1; s <= c.nPkts && !c.retxMark[s] && !math.IsNaN(c.sentAt[s]) {
			c.updateRTT(c.Net.Sim.Now() - c.sentAt[s])
		}
		c.sndUna = p.AckNo
		c.dupAcks = 0
		if c.inRecovery {
			// Fast recovery ends on the first new ACK: deflate the window
			// back to ssthresh (classic Reno).
			c.cwnd = c.ssthresh
			c.inRecovery = false
		} else if c.cwnd < c.ssthresh {
			c.cwnd += float64(acked) // slow start
		} else {
			c.cwnd += float64(acked) / c.cwnd // congestion avoidance
		}
		c.armRTO()
		if c.sndUna > c.nPkts {
			c.finish()
			return
		}
		c.trySend()
		return
	}
	// Duplicate ACK.
	c.dupAcks++
	if c.inRecovery {
		// Each further dup ACK signals another delivered segment: inflate
		// the window by one MSS and keep the pipe full. Without this the
		// sender transmits nothing during a loss-side window of dup ACKs
		// and stalls until the RTO fires.
		c.cwnd++
		c.trySend()
		return
	}
	if c.dupAcks == 3 {
		c.ssthresh = math.Max(c.cwnd/2, 2)
		c.resend(c.sndUna)
		// Inflate by the three segments the dup ACKs proved delivered.
		c.cwnd = c.ssthresh + 3
		c.inRecovery = true
		c.armRTO()
		c.trySend()
	}
}

func (c *TCPConn) updateRTT(sample float64) {
	const alpha, beta = 1.0 / 8, 1.0 / 4
	c.rttvar = (1-beta)*c.rttvar + beta*math.Abs(c.srtt-sample)
	c.srtt = (1-alpha)*c.srtt + alpha*sample
	c.rto = math.Max(c.srtt+4*c.rttvar, minRTO)
}

// Acked returns the payload bytes cumulatively acknowledged so far.
func (c *TCPConn) Acked() int64 {
	full := c.sndUna - 1
	if full <= 0 {
		return 0
	}
	if full >= c.nPkts {
		return int64(c.FlowSize)
	}
	return full * int64(c.MSS)
}

// trySend transmits as much of the window as allowed, paced or back-to-back.
func (c *TCPConn) trySend() {
	if c.finished {
		return
	}
	for c.sndNxt < c.sndUna+int64(c.cwnd) && c.sndNxt <= c.nPkts {
		if c.Pacing {
			now := c.Net.Sim.Now()
			// Pace at cwnd/SRTT, doubled during slow start so pacing does
			// not slow window growth (standard pacing-gain practice).
			rate := math.Max(c.cwnd, 1) / c.srtt
			if c.cwnd < c.ssthresh {
				rate *= 2
			}
			gap := 1 / rate
			at := math.Max(now, c.nextPaceAt)
			c.nextPaceAt = at + gap
			seq := c.sndNxt
			c.sndNxt++
			c.Net.Sim.Schedule(at-now, func() { c.emit(seq) })
		} else {
			seq := c.sndNxt
			c.sndNxt++
			c.emit(seq)
		}
	}
}

// emit puts one segment on the wire.
func (c *TCPConn) emit(seq int64) {
	if c.finished {
		return
	}
	size := c.MSS + 40 // header overhead
	if seq == c.nPkts {
		if rem := c.FlowSize % c.MSS; rem != 0 {
			size = rem + 40
		}
	}
	if seq <= c.maxSent {
		c.retxMark[seq] = true // Karn: no RTT sample from a re-sent segment
	} else {
		c.maxSent = seq
	}
	c.sentAt[seq] = c.Net.Sim.Now()
	p := c.Net.newPacket()
	p.Flow, p.Seq, p.Kind, p.Size = c.Flow, seq, Data, size
	p.Src, p.Dst = c.Src, c.Dst
	c.Net.Inject(p)
}

// resend re-emits a segment; emit's maxSent watermark applies the Karn mark.
func (c *TCPConn) resend(seq int64) { c.emit(seq) }

// armRTO pushes the retransmission deadline one RTO past now. The single
// outstanding timer event reschedules itself lazily, so this is O(1) and
// allocation-free on the per-ACK hot path.
func (c *TCPConn) armRTO() {
	c.rtoDeadline = c.Net.Sim.Now() + c.rto
	if !c.rtoArmed {
		c.rtoArmed = true
		c.Net.Sim.Schedule(c.rto, c.onRTOTimer)
	}
}

// onRTOTimer is the single retransmission-timer event. If ACKs have pushed
// the deadline past now, it re-arms for the remainder; otherwise the
// connection has been silent a full RTO: collapse to one segment and
// retransmit.
func (c *TCPConn) onRTOTimer() {
	if c.finished {
		c.rtoArmed = false
		return
	}
	now := c.Net.Sim.Now()
	if now < c.rtoDeadline {
		c.Net.Sim.Schedule(c.rtoDeadline-now, c.onRTOTimer)
		return
	}
	c.RTOCount++
	c.ssthresh = math.Max(c.cwnd/2, 2)
	c.cwnd = 1
	c.rto = math.Min(c.rto*2, 60)
	c.dupAcks = 0
	c.inRecovery = false
	// Go-back-N: slow-start retransmission resumes from the hole. Without
	// the rollback a multi-loss burst costs one backed-off RTO per hole.
	c.resend(c.sndUna)
	c.sndNxt = c.sndUna + 1
	c.rtoDeadline = now + c.rto
	c.Net.Sim.Schedule(c.rto, c.onRTOTimer)
}

func (c *TCPConn) finish() {
	c.finished = true
	if c.Done != nil {
		c.Done(c.Net.Sim.Now() - c.startTime)
	}
}
