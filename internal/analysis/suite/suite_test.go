package suite_test

import (
	"testing"

	"cisp/internal/analysis"
	"cisp/internal/analysis/loader"
	"cisp/internal/analysis/suite"
)

// TestRepoIsLintClean is the enforcement meta-test: the whole module —
// every package, in-package tests included, external test packages too —
// must produce zero unsuppressed cisplint findings. This is the same
// suite `go vet -vettool=cisplint ./...` runs in CI; the test form keeps
// the guarantee local and hermetic (no go list, no export data). It runs
// through the Session driver, so cross-package facts (unitcheck's
// dimension signatures) are in force exactly as in the CLI.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	l, err := loader.New(".")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkgs, err := l.ModulePackages()
	if err != nil {
		t.Fatalf("enumerating module packages: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("suspiciously few packages (%d): %v", len(pkgs), pkgs)
	}
	s := analysis.NewSession(".", suite.All())
	findings, errs := s.Run(pkgs)
	for _, err := range errs {
		t.Error(err)
	}
	total := 0
	for _, f := range findings {
		if f.Suppressed {
			continue
		}
		total++
		t.Errorf("%s", f)
	}
	if total > 0 {
		t.Logf("%d unsuppressed findings; fix them or add //lint:allow <analyzer> -- <justification>", total)
	}
}

// TestSuiteIsComplete pins the analyzer roster: adding an analyzer means
// deliberately growing this list.
func TestSuiteIsComplete(t *testing.T) {
	want := map[string]bool{
		"determinism": true, "maporder": true, "hotpathalloc": true, "paraclosure": true,
		"unitcheck": true,
	}
	all := suite.All()
	if len(all) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(all), len(want))
	}
	for _, a := range all {
		if !want[a.Name] {
			t.Errorf("unexpected analyzer %q", a.Name)
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q has no Doc", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %q has no Run", a.Name)
		}
	}
}
