package experiments

import "testing"

// TestFigAvailAcceptance is the PR's headline criterion: on the hotspot
// workload with the 3-link failure schedule, fast reroute is at least as
// available as no protection (strictly better here — the drill hits links
// that carry protected traffic), the FRR event path performs zero LP
// solves, and full reoptimization's measured MLU is no worse than FRR's in
// both engine modes — the background LP spreads the rerouted load that
// FRR's single backups concentrate.
func TestFigAvailAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("full-tier: failure-resilience study across schemes and engines")
	}
	res := FigAvail(teTestOpt(), 6000)
	if res == nil {
		t.Fatal("FigAvail returned nil")
	}
	if len(res.FailedLinks) != 3 {
		t.Fatalf("drill failed %d links, want 3", len(res.FailedLinks))
	}
	seen := map[int]bool{}
	for _, li := range res.FailedLinks {
		if seen[li] {
			t.Fatalf("drill repeats link %d", li)
		}
		seen[li] = true
	}

	// Year-scale analytic study: the protection ladder must be monotone.
	for _, study := range []string{"year", "sim"} {
		mode := "-"
		if study == "sim" {
			mode = "fluid"
		}
		none := res.Row(study, "none", mode)
		frr := res.Row(study, "frr", mode)
		reopt := res.Row(study, "reopt", mode)
		if none == nil || frr == nil || reopt == nil {
			t.Fatalf("%s study rows missing", study)
		}
		if frr.Availability < none.Availability {
			t.Errorf("%s: FRR availability %.5f below no-protection %.5f",
				study, frr.Availability, none.Availability)
		}
		if frr.Availability <= none.Availability {
			t.Errorf("%s: FRR availability %.5f not strictly above no-protection %.5f (drill missed protected links?)",
				study, frr.Availability, none.Availability)
		}
		if reopt.Availability < frr.Availability {
			t.Errorf("%s: full-reopt availability %.5f below FRR %.5f",
				study, reopt.Availability, frr.Availability)
		}
	}

	for _, engine := range []string{"packet", "fluid"} {
		none := res.Row("sim", "none", engine)
		frr := res.Row("sim", "frr", engine)
		reopt := res.Row("sim", "reopt", engine)
		if none == nil || frr == nil || reopt == nil {
			t.Fatalf("%s: sim rows missing", engine)
		}
		// Zero LP solves on the FRR event path (and none for no-protection).
		if frr.LPSolves != 0 {
			t.Errorf("%s: FRR plan performed %d LP solves on the event path", engine, frr.LPSolves)
		}
		if none.LPSolves != 0 {
			t.Errorf("%s: no-protection plan performed %d LP solves", engine, none.LPSolves)
		}
		if reopt.LPSolves == 0 {
			t.Errorf("%s: full reoptimization reports zero background LP solves", engine)
		}
		// Full reoptimization spreads the load FRR concentrates: measured
		// MLU ordering with both engines seeing identical offered traffic.
		if reopt.MLU > frr.MLU {
			t.Errorf("%s: full-reopt measured MLU %.4f above FRR %.4f", engine, reopt.MLU, frr.MLU)
		}
		// Protection must not lose flows relative to no protection, and the
		// full loop completes everything offered in this drill.
		if frr.Completed < none.Completed {
			t.Errorf("%s: FRR completed %d flows, fewer than no-protection's %d",
				engine, frr.Completed, none.Completed)
		}
		if reopt.Completed < frr.Completed {
			t.Errorf("%s: reopt completed %d flows, fewer than FRR's %d",
				engine, reopt.Completed, frr.Completed)
		}
		if frr.PredMLU <= 0 || reopt.PredMLU <= 0 {
			t.Errorf("%s: planning-side MLU missing (frr %.3f, reopt %.3f)",
				engine, frr.PredMLU, reopt.PredMLU)
		}
	}
}

// TestSimFailureScheduleShape: the drill's schedule must have a window
// where all three links are down together (the compound-failure instant
// the planning-side MLU is evaluated at).
func TestSimFailureScheduleShape(t *testing.T) {
	s := simFailureSchedule([]int{3, 7, 9}, 12)
	down := s.DownAt(allDownTime)
	for _, li := range []int{3, 7, 9} {
		if !down[li] {
			t.Fatalf("link %d not down at t=%v", li, allDownTime)
		}
	}
	if down[0] || down[11] {
		t.Fatal("unscheduled links reported down")
	}
	evs := s.Events()
	if len(evs) != 6 {
		t.Fatalf("%d events, want 3 down + 3 up", len(evs))
	}
	for _, ev := range evs {
		if ev.Time <= 0 || ev.Time >= teHorizon {
			t.Fatalf("event %+v outside the replay horizon", ev)
		}
	}
}
