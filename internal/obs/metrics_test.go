package obs

import (
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("c_total") != c {
		t.Fatal("same name did not return the same counter")
	}
	if r.Counter("c_total", "k", "v") == c {
		t.Fatal("labelled lookup returned the unlabelled counter")
	}
	// Label canonicalization: order does not matter.
	if r.Counter("c_total", "a", "1", "b", "2") != r.Counter("c_total", "b", "2", "a", "1") {
		t.Fatal("label order produced distinct counters")
	}

	g := r.Gauge("g")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
	g.SetMax(1.0)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("SetMax lowered the gauge to %v", got)
	}
	g.SetMax(3.0)
	if got := g.Value(); got != 3.0 {
		t.Fatalf("SetMax = %v, want 3", got)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramBuckets("h", []float64{1, 2, 5})
	// le is inclusive: a value exactly on a bound lands in that bucket.
	for _, v := range []float64{0.5, 1.0, 1.5, 2.0, 5.0, 5.1} {
		h.Observe(v)
	}
	want := []int64{2, 2, 1} // (-inf,1], (1,2], (2,5]
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket le=%v count = %d, want %d", h.uppers[i], got, w)
		}
	}
	if got := h.inf.Load(); got != 1 {
		t.Errorf("+Inf bucket = %d, want 1", got)
	}
	if got := h.Count(); got != 6 {
		t.Errorf("count = %d, want 6", got)
	}
	if got, want := h.Sum(), 0.5+1.0+1.5+2.0+5.0+5.1; got != want {
		t.Errorf("sum = %v, want %v", got, want)
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramBuckets("h", []float64{1, 2, 4})
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile != 0")
	}
	for i := 0; i < 100; i++ {
		h.Observe(0.5) // all in (-inf, 1]
	}
	q := h.Quantile(0.5)
	if q <= 0 || q > 1 {
		t.Errorf("p50 = %v, want within (0,1]", q)
	}
	for i := 0; i < 100; i++ {
		h.Observe(3) // (2,4]
	}
	q = h.Quantile(0.99)
	if q <= 2 || q > 4 {
		t.Errorf("p99 = %v, want within (2,4]", q)
	}
}

// TestRegistryRaceHammer exercises concurrent lookup and update across all
// instrument kinds; run with -race it is the registry's concurrency test.
func TestRegistryRaceHammer(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("hits_total", "worker", "shared").Inc()
				r.Gauge("depth").SetMax(float64(i))
				r.Gauge("level").Add(1)
				r.Histogram("lat_seconds").Observe(float64(i) * 1e-4)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits_total", "worker", "shared").Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := r.Gauge("level").Value(); got != 8000 {
		t.Errorf("gauge Add total = %v, want 8000", got)
	}
	if got := r.Gauge("depth").Value(); got != 999 {
		t.Errorf("gauge max = %v, want 999", got)
	}
	if got := r.Histogram("lat_seconds").Count(); got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
}

// TestNilSinkIsFree pins the disabled path: every instrumentation call on
// a nil sink (and the nil instruments it returns) must be allocation-free
// no-ops — that is what lets library code stay instrumented
// unconditionally.
func TestNilSinkIsFree(t *testing.T) {
	var s *Sink
	allocs := testing.AllocsPerRun(100, func() {
		s.Counter("c").Inc()
		s.Counter("c").Add(3)
		s.Gauge("g").Set(1)
		s.Gauge("g").SetMax(2)
		s.Histogram("h").Observe(0.5)
		sp := s.Span("stage")
		sp.SetItems(10)
		sp.Child("sub").End()
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("nil-sink instrumentation allocated %.1f times per run, want 0", allocs)
	}
	if Active() != nil {
		t.Fatal("test assumes no active sink")
	}
	allocs = testing.AllocsPerRun(100, func() {
		Active().Counter("c").Inc()
	})
	if allocs != 0 {
		t.Fatalf("Active() nil path allocated %.1f times per run, want 0", allocs)
	}
}

func TestSinkNilFieldsSafe(t *testing.T) {
	s := &Sink{} // no registry, no tracer, no clock
	s.Counter("c").Inc()
	s.Gauge("g").Set(1)
	s.Histogram("h").Observe(1)
	s.StartTimer("t")()
	if sp := s.Span("x"); sp != nil {
		t.Fatal("Span on tracerless sink should be nil")
	}
	if c := s.Counter("c"); c.Value() != 0 {
		t.Fatal("nil counter should read 0")
	}
}

func TestOddLabelsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("odd label list did not panic")
		}
	}()
	NewRegistry().Counter("c", "dangling-key")
}
