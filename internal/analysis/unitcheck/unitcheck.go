// Package unitcheck implements the cisplint analyzer that tracks physical
// dimensions — length, time, data size, data rate, decibels, dimensionless
// ratios — through assignments, arithmetic and calls (DESIGN.md §11). The
// type system already rejects mixing distinct named unit types; unitcheck
// covers what the compiler cannot see:
//
//   - additions, subtractions and comparisons whose operands carry
//     different known dimensions;
//   - products and quotients whose computed dimension disagrees with the
//     static unit type of the expression (Meters*Meters is an area, not a
//     Meters);
//   - direct Go conversions between unit types, which silently drop scale
//     factors (Meters(km)) or relabel dimensions (Utilization(bps) — the
//     PR 5 LP-conditioning bug);
//   - conversions of an expression with a known dimension into a unit
//     type of a different dimension, including through float64-shaped
//     function boundaries via cross-package dimension facts.
//
// float64(x) is the sanctioned escape hatch: it erases the dimension for
// checking purposes, so the established boundary idiom
// units.X(float64(a)*f) never trips the analyzer. Inference, by contrast,
// looks through such conversions when computing a function's dimension
// signature — see infer.go.
//
// The units package itself is exempt from diagnostics: it is the trusted
// kernel whose whole job is performing the raw scale casts everyone else
// is barred from.
package unitcheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"cisp/internal/analysis"
)

// Analyzer flags arithmetic, comparisons and conversions that mix
// physical dimensions.
var Analyzer = &analysis.Analyzer{
	Name: "unitcheck",
	Doc: "flags unit-mixing arithmetic the type system cannot see: adding or comparing values " +
		"of different physical dimensions, products typed as a unit they no longer are, and raw " +
		"conversions between unit types that drop scale factors",
	Run:   run,
	Facts: factsHook,
}

func factsHook(pass *analysis.Pass) any {
	ff := packageFacts(pass.Pkg, pass.Info, pass.Files, pass.ImportFacts)
	if ff == nil {
		return nil
	}
	return ff
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Path() == unitsPath {
		return nil // the trusted kernel: defines the very casts others may not write
	}
	c := &checker{
		pass: &passLike{Pkg: pass.Pkg, Info: pass.Info, ImportFacts: pass.ImportFacts},
		sigs: inferSigs(pass.Pkg, pass.Info, pass.Files, pass.ImportFacts),
	}
	for _, f := range pass.Files {
		analysis.WithStack(f, func(n ast.Node, stack []ast.Node) bool {
			switch x := n.(type) {
			case *ast.BinaryExpr:
				checkBinary(pass, c, x, parentOf(stack))
			case *ast.CallExpr:
				checkCall(pass, c, x)
			case *ast.AssignStmt:
				checkAssign(pass, c, x)
			}
			return true
		})
	}
	return nil
}

func parentOf(stack []ast.Node) ast.Node {
	if len(stack) == 0 {
		return nil
	}
	return stack[len(stack)-1]
}

// comparisonOps are the binary operators that, like + and -, require both
// operands to share a dimension.
var comparisonOps = map[token.Token]bool{
	token.EQL: true, token.NEQ: true,
	token.LSS: true, token.LEQ: true,
	token.GTR: true, token.GEQ: true,
}

func checkBinary(pass *analysis.Pass, c *checker, b *ast.BinaryExpr, parent ast.Node) {
	switch {
	case b.Op == token.ADD || b.Op == token.SUB || comparisonOps[b.Op]:
		dx, dy := c.dimOf(b.X), c.dimOf(b.Y)
		if dx.Known && dy.Known && !dx.eq(dy) {
			pass.Reportf(b.OpPos, "%s mixes %s and %s operands", b.Op, dx, dy)
		}
	case b.Op == token.MUL || b.Op == token.QUO:
		dc := c.binaryDim(b)
		if !dc.Known {
			return
		}
		dt := typeDim(pass.Info.TypeOf(b))
		if !dt.Known || dc.eq(dt) {
			return
		}
		// A conversion wrapping the product takes over: the erasing
		// float64(a/b) idiom states "this is a ratio now", and a unit
		// conversion is judged against the computed dimension by
		// checkCall. Only a bare mistyped product is reported here.
		if isConversionOf(pass, parent, b) {
			return
		}
		pass.Reportf(b.OpPos, "%s expression computes %s but has static type %s (%s)",
			b.Op, dc, typeName(pass, b), dt)
	}
}

// isConversionOf reports whether parent is a type conversion whose single
// operand is e.
func isConversionOf(pass *analysis.Pass, parent ast.Node, e ast.Expr) bool {
	call, ok := parent.(*ast.CallExpr)
	if !ok || len(call.Args) != 1 || call.Args[0] != e {
		return false
	}
	tv, ok := pass.Info.Types[call.Fun]
	return ok && tv.IsType()
}

// typeName renders an expression's static type for diagnostics.
func typeName(pass *analysis.Pass, e ast.Expr) string {
	t := pass.Info.TypeOf(e)
	if t == nil {
		return "?"
	}
	if name, ok := unitTypeName(t); ok {
		return "units." + name
	}
	return t.String()
}

func checkCall(pass *analysis.Pass, c *checker, call *ast.CallExpr) {
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		checkConversion(pass, c, call, tv.Type)
		return
	}
	checkArgs(pass, c, call)
}

// checkConversion vets the conversion T(x) where T or x involves the unit
// system. The rules, in order:
//
//   - unit → different unit, where x really is what its type says: either
//     a dropped scale factor (Meters(km) loses the ×1000) or a dimension
//     relabel (Utilization(bps), the PR 5 LP bug). Exempt when x's
//     computed dimension already equals the target's — Utilization(a/b)
//     over same-dimension a, b is a genuine ratio whose static type is a
//     stale label.
//   - unit ↔ time.Duration raw casts: Duration counts nanoseconds, so the
//     cast silently reinterprets seconds as nanoseconds.
//   - anything with a known dimension → unit of a different dimension:
//     catches float64-shaped values whose dimension arrives through facts.
func checkConversion(pass *analysis.Pass, c *checker, call *ast.CallExpr, tgt types.Type) {
	if len(call.Args) != 1 {
		return
	}
	arg := call.Args[0]
	argT := pass.Info.TypeOf(arg)
	tgtName, tgtIsUnit := unitTypeName(tgt)
	argName, argIsUnit := unitTypeName(argT)

	switch {
	case tgtIsUnit && argIsUnit && tgtName != argName:
		dt, dArgType := unitDims[tgtName], unitDims[argName]
		if da := c.dimOf(arg); da.Known && da.eq(dt) && !da.eq(dArgType) {
			return // computed dimension already matches the target: a ratio/product outgrew its static type
		}
		if dArgType.eq(dt) {
			pass.Reportf(call.Pos(),
				"direct conversion units.%s(units.%s value) drops the scale factor; use the units package conversion",
				tgtName, argName)
		} else {
			pass.Reportf(call.Pos(),
				"direct conversion units.%s(units.%s value) relabels %s as %s without converting",
				tgtName, argName, dArgType, dt)
		}
	case tgtIsUnit && isDuration(argT):
		pass.Reportf(call.Pos(),
			"direct conversion units.%s(time.Duration value) reads nanoseconds as %s; use units.DurationSeconds",
			tgtName, unitDims[tgtName])
	case isDuration(tgt) && argIsUnit:
		pass.Reportf(call.Pos(),
			"direct conversion time.Duration(units.%s value) reinterprets %s as a nanosecond count; use the Duration method",
			argName, unitDims[argName])
	case tgtIsUnit:
		dt := unitDims[tgtName]
		if da := c.dimOf(arg); da.Known && !da.eq(dt) {
			pass.Reportf(call.Pos(),
				"conversion units.%s(...) of a %s-dimensioned expression", tgtName, da)
		}
	}
}

// checkArgs vets call arguments against the callee's dimension signature:
// a float64-shaped parameter with an inferred dimension must not receive
// an expression of a different known dimension. Parameters with unit
// types need no check — the compiler enforces those.
func checkArgs(pass *analysis.Pass, c *checker, call *ast.CallExpr) {
	fd, ok := c.signatureOf(call)
	if !ok {
		return
	}
	sig, _ := pass.Info.TypeOf(call.Fun).(*types.Signature)
	if sig == nil {
		return
	}
	n := sig.Params().Len()
	if sig.Variadic() {
		n-- // the variadic tail is unchecked
	}
	for i := 0; i < n && i < len(call.Args) && i < len(fd.Params); i++ {
		if !fd.Params[i].Known || typeDim(sig.Params().At(i).Type()).Known {
			continue
		}
		if da := c.dimOf(call.Args[i]); da.Known && !da.eq(fd.Params[i]) {
			pass.Reportf(call.Args[i].Pos(),
				"argument %d to %s carries %s; its dimension signature expects %s",
				i+1, calleeName(pass, call), da, fd.Params[i])
		}
	}
}

// calleeName renders the called function for diagnostics.
func calleeName(pass *analysis.Pass, call *ast.CallExpr) string {
	c := &checker{pass: &passLike{Pkg: pass.Pkg, Info: pass.Info}}
	if fn := c.callee(call); fn != nil {
		if fn.Pkg() != nil && fn.Pkg() != pass.Pkg {
			return fn.Pkg().Name() + "." + fn.Name()
		}
		return fn.Name()
	}
	return "call"
}

// checkAssign vets the compound assignment operators, which are binary
// expressions the AST spells differently: x += y needs matching
// dimensions, x *= y must leave x's dimension unchanged.
func checkAssign(pass *analysis.Pass, c *checker, as *ast.AssignStmt) {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return
	}
	dl, dr := c.dimOf(as.Lhs[0]), c.dimOf(as.Rhs[0])
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN:
		if dl.Known && dr.Known && !dl.eq(dr) {
			pass.Reportf(as.TokPos, "%s mixes %s and %s operands", as.Tok, dl, dr)
		}
	case token.MUL_ASSIGN:
		if dl.Known && dr.Known && !dl.mul(dr).eq(dl) {
			pass.Reportf(as.TokPos, "%s by a %s value changes the dimension of the %s target", as.Tok, dr, dl)
		}
	case token.QUO_ASSIGN:
		if dl.Known && dr.Known && !dl.div(dr).eq(dl) {
			pass.Reportf(as.TokPos, "%s by a %s value changes the dimension of the %s target", as.Tok, dr, dl)
		}
	}
}
