package unitcheck

// This file is the dimension evaluator and the signature-inference engine.
//
// dimOf assigns a Dim to an expression bottom-up. Two modes share the
// code, differing only at conversions to basic numeric types:
//
//   - checking mode (transparent=false): float64(x) ERASES the dimension.
//     That conversion is the sanctioned boundary idiom — the programmer is
//     explicitly leaving the unit system — so no diagnostic may see
//     through it.
//
//   - inference mode (transparent=true): float64(x) PRESERVES x's
//     dimension. A function returning float64(meters+meters) still hands
//     its caller a length; recording that in the signature is the whole
//     point of fact propagation.
//
// Inference runs two rounds over the package so dimensions chain through
// intra-package calls (round 1 infers leaf signatures, round 2 lets
// callers of those leaves see them). Cross-package, the same signatures
// travel as facts: Pass.FactsOf serves the JSON a dependency's inference
// produced, computed bottom-up over the import DAG by the Session driver
// (or carried in .vetx files under `go vet`).

import (
	"encoding/json"
	"go/ast"
	"go/token"
	"go/types"
)

// A checker evaluates expression dimensions for one pass.
type checker struct {
	pass        *passLike
	sigs        map[*types.Func]FuncDim
	transparent bool
	facts       map[string]FuncFacts // import path → parsed facts (nil entry: none)
}

// passLike is the slice of analysis.Pass the evaluator needs; holding it
// directly keeps checker constructible in both Run and Facts hooks.
type passLike struct {
	Pkg         *types.Package
	Info        *types.Info
	ImportFacts func(importPath string) json.RawMessage
}

// objOf resolves an identifier or selector to its object.
func (c *checker) objOf(e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := c.pass.Info.Uses[x]; obj != nil {
			return obj
		}
		return c.pass.Info.Defs[x]
	case *ast.SelectorExpr:
		return c.pass.Info.Uses[x.Sel]
	}
	return nil
}

// dimOf evaluates the dimension of an expression.
func (c *checker) dimOf(e ast.Expr) Dim {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.BasicLit:
		return Dim{} // literals are chameleon scalars, whatever their contextual type
	case *ast.Ident, *ast.SelectorExpr:
		if k, ok := c.objOf(e).(*types.Const); ok {
			// A declared constant carries a dimension only when its own
			// declared type does (const step units.Meters = 2000). Untyped
			// constants adopt the context type without any unit meaning.
			return typeDim(k.Type())
		}
		return typeDim(c.pass.Info.TypeOf(e))
	case *ast.UnaryExpr:
		if x.Op == token.ADD || x.Op == token.SUB {
			return c.dimOf(x.X)
		}
		return Dim{}
	case *ast.BinaryExpr:
		return c.binaryDim(x)
	case *ast.CallExpr:
		return c.callDim(x)
	default:
		return typeDim(c.pass.Info.TypeOf(e))
	}
}

// binaryDim evaluates a binary expression's dimension. Unknown operands of
// a product or quotient are treated as scalars — in compiling Go, a
// mixed-type operand is necessarily an untyped constant.
func (c *checker) binaryDim(b *ast.BinaryExpr) Dim {
	switch b.Op {
	case token.ADD, token.SUB:
		if dx := c.dimOf(b.X); dx.Known {
			return dx
		}
		return c.dimOf(b.Y)
	case token.MUL:
		dx, dy := c.dimOf(b.X), c.dimOf(b.Y)
		switch {
		case dx.Known && dy.Known:
			return dx.mul(dy)
		case dx.Known:
			return dx
		default:
			return dy
		}
	case token.QUO:
		dx, dy := c.dimOf(b.X), c.dimOf(b.Y)
		switch {
		case dx.Known && dy.Known:
			return dx.div(dy)
		case dx.Known:
			return dx // x / scalar
		case dy.Known:
			return dimless.div(dy) // scalar / x inverts the dimension
		default:
			return Dim{}
		}
	}
	return Dim{}
}

// callDim evaluates a call or conversion expression's dimension.
func (c *checker) callDim(call *ast.CallExpr) Dim {
	if tv, ok := c.pass.Info.Types[call.Fun]; ok && tv.IsType() {
		if d := typeDim(tv.Type); d.Known {
			return d
		}
		if c.transparent && len(call.Args) == 1 && isBasicNumeric(tv.Type) {
			return c.dimOf(call.Args[0])
		}
		return Dim{}
	}
	// A single typed result answers directly (units constructors, methods,
	// any function returning a unit type).
	sig, _ := c.pass.Info.TypeOf(call.Fun).(*types.Signature)
	if sig != nil && sig.Results().Len() == 1 {
		if d := typeDim(sig.Results().At(0).Type()); d.Known {
			return d
		}
	}
	// Otherwise consult inferred signatures: intra-package first, then
	// cross-package facts.
	if fd, ok := c.signatureOf(call); ok && len(fd.Results) == 1 {
		return fd.Results[0]
	}
	return Dim{}
}

// callee resolves the called function object, unwrapping parens and
// generic instantiation syntax; nil for builtins, conversions and calls of
// function-typed values.
func (c *checker) callee(call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	for {
		switch f := fun.(type) {
		case *ast.IndexExpr:
			fun = ast.Unparen(f.X)
			continue
		case *ast.IndexListExpr:
			fun = ast.Unparen(f.X)
			continue
		}
		break
	}
	switch f := fun.(type) {
	case *ast.Ident:
		fn, _ := c.pass.Info.Uses[f].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := c.pass.Info.Uses[f.Sel].(*types.Func)
		return fn
	}
	return nil
}

// signatureOf looks up the dimension signature of a call's target: the
// intra-package inference table for functions of this package, the
// propagated facts for functions of module dependencies.
func (c *checker) signatureOf(call *ast.CallExpr) (FuncDim, bool) {
	fn := c.callee(call)
	if fn == nil {
		return FuncDim{}, false
	}
	fn = fn.Origin()
	if fd, ok := c.sigs[fn]; ok {
		return fd, true
	}
	pkg := fn.Pkg()
	if pkg == nil || pkg == c.pass.Pkg || c.pass.ImportFacts == nil {
		return FuncDim{}, false
	}
	ff, ok := c.factsFor(pkg.Path())
	if !ok {
		return FuncDim{}, false
	}
	fd, ok := ff[funcKey(fn)]
	return fd, ok
}

// factsFor parses (once) the unitcheck facts of an imported package.
func (c *checker) factsFor(path string) (FuncFacts, bool) {
	if ff, ok := c.facts[path]; ok {
		return ff, ff != nil
	}
	var ff FuncFacts
	if raw := c.pass.ImportFacts(path); raw != nil {
		if err := json.Unmarshal(raw, &ff); err != nil {
			ff = nil
		}
	}
	if c.facts == nil {
		c.facts = make(map[string]FuncFacts)
	}
	c.facts[path] = ff
	return ff, ff != nil
}

// declaredSig builds a function's dimension signature from declared types
// alone — the starting point of inference and the baseline facts export
// compares against.
func declaredSig(fn *types.Func) FuncDim {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return FuncDim{}
	}
	fd := FuncDim{
		Params:  make([]Dim, sig.Params().Len()),
		Results: make([]Dim, sig.Results().Len()),
	}
	for i := range fd.Params {
		fd.Params[i] = typeDim(sig.Params().At(i).Type())
	}
	for i := range fd.Results {
		fd.Results[i] = typeDim(sig.Results().At(i).Type())
	}
	return fd
}

// inferSigs computes the package's dimension signatures: declared types
// seeded, then two rounds of body inference so dimensions chain through
// one level of intra-package calls. Inference is deliberately syntactic
// and local — no dataflow through variables — so it only ever claims a
// dimension the code states outright.
func inferSigs(pkg *types.Package, info *types.Info, files []*ast.File, importFacts func(string) json.RawMessage) map[*types.Func]FuncDim {
	type declFn struct {
		fn   *types.Func
		decl *ast.FuncDecl
	}
	var decls []declFn
	sigs := make(map[*types.Func]FuncDim)
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sigs[fn] = declaredSig(fn)
			if fd.Body != nil {
				decls = append(decls, declFn{fn, fd})
			}
		}
	}

	c := &checker{
		pass:        &passLike{Pkg: pkg, Info: info, ImportFacts: importFacts},
		transparent: true,
	}
	for round := 0; round < 2; round++ {
		c.sigs = sigs
		next := make(map[*types.Func]FuncDim, len(sigs))
		for fn, fd := range sigs {
			next[fn] = fd
		}
		for _, df := range decls {
			fd := cloneSig(next[df.fn])
			inferResults(c, df.decl, &fd)
			inferParams(c, df.fn, df.decl, &fd)
			next[df.fn] = fd
		}
		sigs = next
	}
	return sigs
}

func cloneSig(fd FuncDim) FuncDim {
	return FuncDim{
		Params:  append([]Dim(nil), fd.Params...),
		Results: append([]Dim(nil), fd.Results...),
	}
}

// inferResults fills unknown result dimensions from the function's return
// statements: a slot is inferred only when every return agrees on a known
// dimension. Returns inside nested function literals don't count.
func inferResults(c *checker, decl *ast.FuncDecl, fd *FuncDim) {
	needed := false
	for _, d := range fd.Results {
		if !d.Known {
			needed = true
		}
	}
	if !needed {
		return
	}
	agreed := make([]Dim, len(fd.Results))
	seen, bail := false, false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch r := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			if len(r.Results) != len(fd.Results) {
				bail = true // naked return or multi-value forward: give up
				return false
			}
			for i, e := range r.Results {
				d := c.dimOf(e)
				if !seen {
					agreed[i] = d
				} else if agreed[i] != d {
					agreed[i] = Dim{}
				}
			}
			seen = true
		}
		return !bail
	})
	if bail || !seen {
		return
	}
	for i := range fd.Results {
		if !fd.Results[i].Known && agreed[i].Known {
			fd.Results[i] = agreed[i]
		}
	}
}

// inferParams fills unknown parameter dimensions from direct unit
// conversions of the parameter in the body: units.Meters(p) states that p
// is a length. Conflicting conversions cancel the inference.
func inferParams(c *checker, fn *types.Func, decl *ast.FuncDecl, fd *FuncDim) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || decl.Body == nil {
		return
	}
	paramIdx := make(map[types.Object]int, sig.Params().Len())
	for i := 0; i < sig.Params().Len(); i++ {
		if !fd.Params[i].Known {
			paramIdx[sig.Params().At(i)] = i
		}
	}
	if len(paramIdx) == 0 {
		return
	}
	inferred := make(map[int]Dim)
	conflicted := make(map[int]bool)
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		tv, ok := c.pass.Info.Types[call.Fun]
		if !ok || !tv.IsType() {
			return true
		}
		d := typeDim(tv.Type)
		if !d.Known {
			return true
		}
		id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
		if !ok {
			return true
		}
		obj := c.pass.Info.Uses[id]
		i, ok := paramIdx[obj]
		if !ok {
			return true
		}
		if prev, ok := inferred[i]; ok && prev != d {
			conflicted[i] = true
		} else {
			inferred[i] = d
		}
		return true
	})
	for i, d := range inferred {
		if !conflicted[i] {
			fd.Params[i] = d
		}
	}
}

// packageFacts computes the exported fact value: the inferred signatures
// of exported functions that say strictly more than their declared types.
func packageFacts(pkg *types.Package, info *types.Info, files []*ast.File, importFacts func(string) json.RawMessage) FuncFacts {
	sigs := inferSigs(pkg, info, files, importFacts)
	out := make(FuncFacts)
	for fn, fd := range sigs {
		if !fn.Exported() || fd.eq(declaredSig(fn)) {
			continue
		}
		out[funcKey(fn)] = fd
	}
	if len(out) == 0 {
		return nil
	}
	return out
}
