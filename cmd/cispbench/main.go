// Command cispbench regenerates the paper's tables and figures as text.
//
// Usage:
//
//	cispbench [-scale small|medium|full] [-seed N] [-fig all|2,3,4a,...]
//	          [-parallel N] [-workers N] [-mode packet|fluid] [-flows N]
//	          [-obs addr] [-trace file] [-progress] [-obshold secs]
//
// Independent figures execute concurrently in a bounded pool (-parallel,
// GOMAXPROCS wide by default); output is still emitted in figure order,
// streamed as each figure completes (-parallel 1 streams within figures
// too, like a plain sequential run). Concurrent figures each hold their
// own scenario and contend for CPU, so peak memory grows with -parallel
// and wall-clock figures (Fig 2's runtime columns) are only faithful at
// -parallel 1 — which is also the sequential memory profile for -scale
// full on small machines.
// -workers bounds the inner worker pool the design and link-build hot
// paths fan out on. Each figure's output is the same rows/series the paper
// reports; see EXPERIMENTS.md for the paper-vs-measured record.
// -mode and -flows drive the "6s" traffic-mix replay: -mode=packet runs
// the discrete-event engine (clamped to ~1.5k flows), -mode=fluid the
// flow-level max-min engine, which replays the same scenario with 10⁵-10⁶
// concurrent flows. -flows also sizes the "te" traffic-engineering
// comparison and the "avail" failure-resilience study (both always report
// both engine modes); "avail" additionally runs a year-scale analytic
// availability comparison of no-protection vs fast-reroute vs full
// reoptimization (internal/resilience). "users" runs the million-user
// scenario suite (internal/workload): population-driven per-application
// workloads — evening peak, flash crowd, disaster surge, CDN placement —
// replayed end to end on the hybrid backbone against a fiber-only
// baseline in both engines.
//
// -benchjson writes the engines' machine-readable throughput record
// (flows/sec, ns/event) instead of figures; -benchcompare gates a new
// record against a baseline, exiting 1 when either metric of either
// engine regresses past -benchtolerance (default 10%).
//
// -obs serves live observability (internal/obs) while the run executes:
// Prometheus /metrics, /metrics.json, the stage trace at /trace, a
// /healthz probe, and net/http/pprof under /debug/pprof. -trace writes
// the stage trace as Chrome trace_event JSON on exit (load it in
// chrome://tracing or Perfetto); same-seed runs write byte-identical
// files. -progress prints a stderr line per completed stage (path,
// elapsed, items/sec). -obshold keeps the -obs endpoint up N seconds
// after the run for a final scrape.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"cisp"
	"cisp/internal/experiments"
	"cisp/internal/netsim"
	"cisp/internal/obs"
	"cisp/internal/parallel"
)

func main() {
	scale := flag.String("scale", "small", "scenario scale: small, medium, full")
	seed := flag.Int64("seed", 1, "scenario seed")
	par := flag.Int("parallel", 0, "concurrent figure runs (0 = GOMAXPROCS, 1 = sequential)")
	workers := flag.Int("workers", 0, "inner worker-pool width for the design/link-build hot paths (0 = GOMAXPROCS)")
	modeStr := flag.String("mode", "fluid", "simulation engine for the 6s traffic-mix replay: packet or fluid")
	flows := flag.Int("flows", 100_000, "concurrent flows for the 6s traffic-mix replay and the te comparison (packet engines clamp to ~1.5k)")
	benchJSON := flag.String("benchjson", "", "run the engine benchmark (both modes) and write a machine-readable JSON record to this file, skipping figures")
	benchCompare := flag.String("benchcompare", "", "baseline benchmark JSON; compares the record named by the positional argument against it and exits 1 on regression, skipping figures")
	benchTol := flag.Float64("benchtolerance", 0.10, "relative tolerance for -benchcompare (0.10 = 10%; CI uses a looser bound across runner generations)")
	obsAddr := flag.String("obs", "", "serve live observability on this address (e.g. :9090): /metrics, /metrics.json, /trace, /healthz, /debug/pprof")
	traceFile := flag.String("trace", "", "write the run's stage trace (Chrome trace_event JSON, chrome://tracing / Perfetto) to this file on exit")
	progress := flag.Bool("progress", false, "print per-stage progress lines (stage, elapsed, items/sec) to stderr as spans complete")
	obsHold := flag.Int("obshold", 0, "with -obs, keep the endpoint up this many seconds after the run finishes (final scrape window)")

	// The spec closures run only after flag.Parse, so they may dereference
	// the flag pointers and derive scale-dependent sweeps from the Options
	// they receive.
	var mode netsim.Mode
	budgetsFor := func(o experiments.Options) []float64 {
		if o.Scale == cisp.ScaleSmall {
			return []float64{0, 100, 250, 500, 1000}
		}
		return []float64{0, 200, 500, 1000, 2000, 4000}
	}
	aggregatesFor := func(o experiments.Options) []float64 {
		if o.Scale == cisp.ScaleSmall {
			return []float64{10, 25, 50, 100, 200}
		}
		return []float64{20, 50, 100, 200, 500, 1000}
	}
	loads := []float64{10, 30, 50, 70, 90, 110, 140, 170}

	all := []experiments.Spec{
		{Name: "2", Run: func(o experiments.Options) {
			sizes := []int{4, 6, 8, 10, 12}
			if o.Scale != cisp.ScaleSmall {
				sizes = []int{5, 10, 15, 20, 30, 40, 60}
			}
			experiments.Fig2Scaling(o, sizes, 12, 5)
		}},
		{Name: "3", Run: func(o experiments.Options) { experiments.Fig3USNetwork(o) }},
		{Name: "4a", Run: func(o experiments.Options) { experiments.Fig4aStretchVsBudget(o, budgetsFor(o)) }},
		{Name: "4b", Run: func(o experiments.Options) { experiments.Fig4bDisjointPaths(o, 20) }},
		{Name: "4c", Run: func(o experiments.Options) { experiments.Fig4cCostPerGB(o, aggregatesFor(o)) }},
		{Name: "5", Run: func(o experiments.Options) {
			experiments.Fig5Perturbation(o, []float64{0, 0.1, 0.3, 0.5}, loads)
		}},
		{Name: "6", Run: func(o experiments.Options) { experiments.Fig6SpeedMismatch(o, 10, 3) }},
		{Name: "6s", Run: func(o experiments.Options) { experiments.Fig6Scale(o, mode, *flows) }},
		{Name: "7", Run: func(o experiments.Options) { experiments.Fig7Weather(o, 365) }},
		{Name: "8", Run: func(o experiments.Options) { experiments.Fig8Europe(o) }},
		{Name: "9", Run: func(o experiments.Options) { experiments.Fig9TrafficModels(o, aggregatesFor(o)) }},
		{Name: "10", Run: func(o experiments.Options) {
			experiments.Fig10TowerConstraints(o, [][2]float64{
				{100, 0.85}, {80, 1.0}, {100, 0.65}, {70, 1.0}, {100, 0.45},
				{70, 0.45}, {60, 1.0}, {60, 0.65}, {60, 0.45},
			})
		}},
		{Name: "11", Run: func(o experiments.Options) { experiments.Fig11MixDeviation(o, loads) }},
		{Name: "12", Run: func(o experiments.Options) {
			experiments.Fig12Gaming(o, []float64{0, 25, 50, 75, 100, 150, 200, 250, 300})
		}},
		{Name: "13", Run: func(o experiments.Options) { experiments.Fig13WebBrowsing(o, 80) }},
		{Name: "econ", Run: func(o experiments.Options) { experiments.CostBenefit(o, 0.81) }},
		{Name: "ext", Run: func(o experiments.Options) { experiments.Extensions(o) }},
		{Name: "te", Run: func(o experiments.Options) { experiments.FigTE(o, *flows) }},
		{Name: "avail", Run: func(o experiments.Options) { experiments.FigAvail(o, *flows) }},
		{Name: "users", Run: func(o experiments.Options) { experiments.FigUsers(o, *flows) }},
	}
	// The -fig help string is derived from the spec table itself, so a new
	// figure can never drift out of the documented list.
	names := make([]string, len(all))
	for i, s := range all {
		names[i] = s.Name
	}
	figs := flag.String("fig", "all",
		fmt.Sprintf("comma-separated figure list (%s) or 'all'", strings.Join(names, ",")))
	flag.Parse()

	var err error
	mode, err = netsim.ParseMode(*modeStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	opt := experiments.Options{Seed: *seed, Out: os.Stdout, Parallelism: *par}
	switch strings.ToLower(*scale) {
	case "small":
		opt.Scale = cisp.ScaleSmall
	case "medium":
		opt.Scale = cisp.ScaleMedium
	case "full":
		opt.Scale = cisp.ScaleFull
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}
	if *workers > 0 {
		parallel.SetWorkers(*workers)
	}

	// Observability: one process-wide sink feeds the live endpoint, the
	// trace file, and the progress lines. Metric values and span timings
	// use the wall clock; the trace file's layout is derived purely from
	// the span tree, so same-seed runs write byte-identical traces.
	var sink *obs.Sink
	if *obsAddr != "" || *traceFile != "" || *progress {
		tr := obs.NewTracer(*seed, obs.WallClock)
		if *progress {
			tr.OnEvent = func(ev obs.SpanEvent) {
				if !ev.End {
					return
				}
				rate := ""
				if ev.Items > 0 && ev.Elapsed > 0 {
					rate = fmt.Sprintf(" %d items (%.0f/s)", ev.Items, float64(ev.Items)/ev.Elapsed.Seconds())
				}
				fmt.Fprintf(os.Stderr, "[obs] %-40s %8.3fs%s\n", ev.Path, ev.Elapsed.Seconds(), rate)
			}
		}
		sink = &obs.Sink{Reg: obs.NewRegistry(), Tr: tr, Clock: obs.WallClock}
		obs.SetActive(sink)
	}
	var obsSrv *obs.Server
	if *obsAddr != "" {
		srv, err := obs.Serve(*obsAddr, sink)
		if err != nil {
			fmt.Fprintln(os.Stderr, "obs:", err)
			os.Exit(2)
		}
		obsSrv = srv
		fmt.Fprintf(os.Stderr, "[obs] serving /metrics /trace /healthz /debug/pprof on %s\n", srv.Addr())
	}
	// finishObs flushes the trace file and holds the endpoint open for a
	// final scrape before the process exits.
	finishObs := func() {
		if *traceFile != "" && sink != nil {
			f, err := os.Create(*traceFile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "obs:", err)
				os.Exit(1)
			}
			if err := obs.WriteTrace(f, sink.Tr); err != nil {
				fmt.Fprintln(os.Stderr, "obs:", err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "obs:", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "[obs] trace written to %s\n", *traceFile)
		}
		if obsSrv != nil {
			if *obsHold > 0 {
				fmt.Fprintf(os.Stderr, "[obs] holding endpoint for %ds\n", *obsHold)
				time.Sleep(time.Duration(*obsHold) * time.Second)
			}
			obsSrv.Close()
		}
	}

	if *benchCompare != "" {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: cispbench -benchcompare baseline.json [-benchtolerance F] new.json")
			os.Exit(2)
		}
		old, err := experiments.LoadBenchRecord(*benchCompare)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		cur, err := experiments.LoadBenchRecord(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		regs, err := experiments.CompareBenchRecords(old, cur, *benchTol)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if len(regs) > 0 {
			for _, r := range regs {
				fmt.Fprintln(os.Stderr, "benchcompare:", r)
			}
			os.Exit(1)
		}
		fmt.Printf("benchcompare: %d engine(s) within %.0f%% of the baseline\n",
			len(old.Engines), *benchTol*100)
		return
	}

	if *benchJSON != "" {
		if err := experiments.BenchNetsim(opt, *flows, *flows, *benchJSON); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		finishObs()
		return
	}

	// "all" derives from the spec table itself, so new figures can't be
	// silently skipped by a stale name list.
	want := map[string]bool{}
	if *figs == "all" {
		for _, s := range all {
			want[s.Name] = true
		}
	} else {
		for _, f := range strings.Split(*figs, ",") {
			want[strings.TrimSpace(f)] = true
		}
	}
	var specs []experiments.Spec
	for _, s := range all {
		if want[s.Name] {
			specs = append(specs, s)
		}
	}
	figPar := *par
	if figPar <= 0 {
		figPar = runtime.GOMAXPROCS(0)
	}
	if want["2"] && len(specs) > 1 && figPar > 1 {
		fmt.Fprintln(os.Stderr,
			"note: concurrent figures contend for CPU and inflate Fig 2's measured design runtimes; use -parallel 1 for timing fidelity")
	}
	experiments.RunAll(opt, specs)
	finishObs()
}
