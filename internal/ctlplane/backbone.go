package ctlplane

import (
	"fmt"
	"sort"

	"cisp/internal/cities"
	"cisp/internal/geo"
	"cisp/internal/netsim"
	"cisp/internal/units"
)

// Backbone is the physical substrate a daemon owns: the microwave links
// (weather-gradable, endpoints indexing Sites) followed by the fiber
// conduits (rain-proof, midpoint transit nodes allowed). The microwave
// prefix ordering is the same contract internal/weather grading,
// resilience schedules, and te.Controller positional updates rely on.
type Backbone struct {
	Sites []cities.City
	Nodes int               // sites plus fiber midpoint transit nodes
	Mw    []netsim.TopoLink // microwave links; A/B index Sites
	Fiber []netsim.TopoLink // fiber conduits, incl. midpoint halves
}

// Hybrid returns the combined link list, microwave first.
func (b *Backbone) Hybrid() []netsim.TopoLink {
	return append(append([]netsim.TopoLink(nil), b.Mw...), b.Fiber...)
}

// validate checks the structural contract New depends on.
func (b *Backbone) validate() error {
	if b == nil {
		return fmt.Errorf("ctlplane: nil backbone")
	}
	if b.Nodes < len(b.Sites) {
		return fmt.Errorf("ctlplane: %d nodes < %d sites", b.Nodes, len(b.Sites))
	}
	for li, l := range b.Mw {
		if l.A < 0 || l.A >= len(b.Sites) || l.B < 0 || l.B >= len(b.Sites) {
			return fmt.Errorf("ctlplane: microwave link %d endpoints %d-%d outside site range [0,%d)", li, l.A, l.B, len(b.Sites))
		}
	}
	return nil
}

// SyntheticBackbone builds a deterministic hybrid substrate over the given
// sites without running the design pipeline: each site gets microwave
// links to its nearestK nearest neighbors (deduplicated), every microwave
// link gets a parallel fiber conduit through a midpoint transit node at
// the paper's ~1.5× fiber stretch, and fiberGbps/mwGbps set the uniform
// capacities. It is the fast-boot substrate for cmd/cispd and the ctltest
// harness; production deployments hand the daemon a designed topology
// (experiments.DesignedTETopology) instead.
func SyntheticBackbone(sites []cities.City, nearestK int, mwGbps, fiberGbps float64) *Backbone {
	if nearestK <= 0 {
		nearestK = 2
	}
	type pair struct{ a, b int }
	chosen := map[pair]bool{}
	for i := range sites {
		type cand struct {
			j int
			d units.Meters
		}
		var cs []cand
		for j := range sites {
			if j != i {
				cs = append(cs, cand{j, sites[i].Loc.DistanceTo(sites[j].Loc)})
			}
		}
		sort.Slice(cs, func(x, y int) bool {
			if cs[x].d != cs[y].d {
				return cs[x].d < cs[y].d
			}
			return cs[x].j < cs[y].j
		})
		for k := 0; k < nearestK && k < len(cs); k++ {
			a, b := i, cs[k].j
			if a > b {
				a, b = b, a
			}
			chosen[pair{a, b}] = true
		}
	}
	var pairs []pair
	for p := range chosen {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(x, y int) bool {
		if pairs[x].a != pairs[y].a {
			return pairs[x].a < pairs[y].a
		}
		return pairs[x].b < pairs[y].b
	})

	b := &Backbone{Sites: sites, Nodes: len(sites)}
	for _, p := range pairs {
		d := float64(sites[p.a].Loc.DistanceTo(sites[p.b].Loc))
		b.Mw = append(b.Mw, netsim.TopoLink{
			A: p.a, B: p.b,
			RateBps:   units.Gbps(mwGbps),
			PropDelay: units.Seconds(d / geo.C),
		})
	}
	for _, p := range pairs {
		d := float64(sites[p.a].Loc.DistanceTo(sites[p.b].Loc)) * 1.5
		mid := b.Nodes
		b.Nodes++
		b.Fiber = append(b.Fiber,
			netsim.TopoLink{A: p.a, B: mid, RateBps: units.Gbps(fiberGbps), PropDelay: units.Seconds(d / 2 / geo.C)},
			netsim.TopoLink{A: mid, B: p.b, RateBps: units.Gbps(fiberGbps), PropDelay: units.Seconds(d / 2 / geo.C)})
	}
	return b
}

// GravityCommodities derives a dense-ID commodity list from site
// populations: demand between every site pair is proportional to the
// product of their populations (the classic gravity model), normalized so
// the total offered load is aggregateGbps. Pairs with zero product (data
// centers, zero-population sites) are skipped. Flow IDs are assigned in
// row-major pair order, so the list is stable for a given site set.
func GravityCommodities(sites []cities.City, aggregateGbps float64) []netsim.Commodity {
	var total float64
	for i := range sites {
		for j := i + 1; j < len(sites); j++ {
			total += float64(sites[i].Population) * float64(sites[j].Population)
		}
	}
	if total <= 0 {
		return nil
	}
	var comms []netsim.Commodity
	flow := 0
	for i := range sites {
		for j := i + 1; j < len(sites); j++ {
			w := float64(sites[i].Population) * float64(sites[j].Population)
			flow++
			if w <= 0 {
				continue
			}
			comms = append(comms, netsim.Commodity{
				Flow: flow, Src: i, Dst: j,
				Demand: units.Gbps(aggregateGbps * w / total),
			})
		}
	}
	return comms
}
