package obs

import (
	"strings"
	"testing"
)

// buildTestRegistry populates a registry with one of each instrument kind,
// registered in a scrambled order the encoders must sort away.
func buildTestRegistry() *Registry {
	r := NewRegistry()
	r.Gauge("cisp_netsim_mlu", "mode", "fluid").Set(0.75)
	h := r.HistogramBuckets("cisp_lp_solve_seconds", []float64{0.001, 0.01, 0.1})
	h.Observe(0.0005)
	h.Observe(0.004)
	h.Observe(0.05)
	h.Observe(2)
	r.Counter("cisp_lp_solves_total").Add(4)
	r.Counter("cisp_netsim_events_total", "mode", "packet").Add(120)
	r.Counter("cisp_netsim_events_total", "mode", "fluid").Add(260)
	return r
}

const wantProm = `# TYPE cisp_lp_solve_seconds histogram
cisp_lp_solve_seconds_bucket{le="0.001"} 1
cisp_lp_solve_seconds_bucket{le="0.01"} 2
cisp_lp_solve_seconds_bucket{le="0.1"} 3
cisp_lp_solve_seconds_bucket{le="+Inf"} 4
cisp_lp_solve_seconds_sum 2.0545
cisp_lp_solve_seconds_count 4
# TYPE cisp_lp_solves_total counter
cisp_lp_solves_total 4
# TYPE cisp_netsim_events_total counter
cisp_netsim_events_total{mode="fluid"} 260
cisp_netsim_events_total{mode="packet"} 120
# TYPE cisp_netsim_mlu gauge
cisp_netsim_mlu{mode="fluid"} 0.75
`

func TestWritePromGolden(t *testing.T) {
	var b strings.Builder
	if err := WriteProm(&b, buildTestRegistry()); err != nil {
		t.Fatal(err)
	}
	if b.String() != wantProm {
		t.Errorf("WriteProm mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), wantProm)
	}
}

const wantJSON = `{
  "counters": [
    {"name": "cisp_lp_solves_total", "labels": {}, "value": 4},
    {"name": "cisp_netsim_events_total", "labels": {"mode": "fluid"}, "value": 260},
    {"name": "cisp_netsim_events_total", "labels": {"mode": "packet"}, "value": 120}
  ],
  "gauges": [
    {"name": "cisp_netsim_mlu", "labels": {"mode": "fluid"}, "value": 0.75}
  ],
  "histograms": [
    {"name": "cisp_lp_solve_seconds", "labels": {}, "buckets": [{"le": "0.001", "count": 1}, {"le": "0.01", "count": 1}, {"le": "0.1", "count": 1}, {"le": "+Inf", "count": 1}], "sum": 2.0545, "count": 4}
  ]
}
`

func TestWriteJSONGolden(t *testing.T) {
	var b strings.Builder
	if err := WriteJSON(&b, buildTestRegistry()); err != nil {
		t.Fatal(err)
	}
	if b.String() != wantJSON {
		t.Errorf("WriteJSON mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), wantJSON)
	}
}

func TestWritePromEmptyAndNil(t *testing.T) {
	var b strings.Builder
	if err := WriteProm(&b, nil); err != nil || b.Len() != 0 {
		t.Errorf("nil registry: err=%v out=%q", err, b.String())
	}
	if err := WriteProm(&b, NewRegistry()); err != nil || b.Len() != 0 {
		t.Errorf("empty registry: err=%v out=%q", err, b.String())
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", "k", `a"b\c`+"\n").Inc()
	var b strings.Builder
	if err := WriteProm(&b, r); err != nil {
		t.Fatal(err)
	}
	want := `c{k="a\"b\\c\n"} 1`
	if !strings.Contains(b.String(), want) {
		t.Errorf("escaped sample %q not found in:\n%s", want, b.String())
	}
}
